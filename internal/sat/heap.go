package sat

// varHeap is a binary max-heap of variables ordered by VSIDS activity,
// with position indices for O(log n) decrease/increase-key. It backs the
// branching heuristic.
type varHeap struct {
	heap     []Var   // heap[i] = variable at heap position i
	indices  []int32 // indices[v] = position of v in heap, -1 if absent
	activity *[]float64
}

func newVarHeap(act *[]float64) *varHeap {
	return &varHeap{activity: act}
}

func (h *varHeap) less(a, b Var) bool {
	return (*h.activity)[a] > (*h.activity)[b]
}

func (h *varHeap) grow(n int) {
	for len(h.indices) < n {
		h.indices = append(h.indices, -1)
	}
}

func (h *varHeap) contains(v Var) bool {
	return int(v) < len(h.indices) && h.indices[v] >= 0
}

func (h *varHeap) empty() bool { return len(h.heap) == 0 }

func (h *varHeap) push(v Var) {
	if h.contains(v) {
		return
	}
	h.grow(int(v) + 1)
	h.indices[v] = int32(len(h.heap))
	h.heap = append(h.heap, v)
	h.up(len(h.heap) - 1)
}

func (h *varHeap) pop() Var {
	v := h.heap[0]
	last := len(h.heap) - 1
	h.heap[0] = h.heap[last]
	h.indices[h.heap[0]] = 0
	h.heap = h.heap[:last]
	h.indices[v] = -1
	if len(h.heap) > 1 {
		h.down(0)
	}
	return v
}

// update restores heap order after v's activity increased.
func (h *varHeap) update(v Var) {
	if h.contains(v) {
		h.up(int(h.indices[v]))
	}
}

// rebuild re-heapifies after a global activity rescale (order unchanged by
// uniform scaling, but kept for decay implementations that renormalise).
func (h *varHeap) rebuild() {
	for i := len(h.heap)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

func (h *varHeap) up(i int) {
	v := h.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(v, h.heap[parent]) {
			break
		}
		h.heap[i] = h.heap[parent]
		h.indices[h.heap[i]] = int32(i)
		i = parent
	}
	h.heap[i] = v
	h.indices[v] = int32(i)
}

func (h *varHeap) down(i int) {
	v := h.heap[i]
	n := len(h.heap)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		child := l
		if r := l + 1; r < n && h.less(h.heap[r], h.heap[l]) {
			child = r
		}
		if !h.less(h.heap[child], v) {
			break
		}
		h.heap[i] = h.heap[child]
		h.indices[h.heap[i]] = int32(i)
		i = child
	}
	h.heap[i] = v
	h.indices[v] = int32(i)
}
