package sat

import (
	"math/rand"
	"testing"
)

// TestWatcherRoundTrip pins the packed-watcher encoding: cref in the high
// word, blocker literal in the low word, both recoverable exactly —
// including the negative crefUndef sentinel, which must survive the
// uint32 truncation and sign-extend back.
func TestWatcherRoundTrip(t *testing.T) {
	cases := []struct {
		c cref
		b Lit
	}{
		{0, 0},
		{crefUndef, 0},
		{crefUndef, PosLit(Var(17))},
		{1, NegLit(Var(0))},
		{1<<31 - 1, PosLit(Var(1<<29 - 1))},
		{123456, NegLit(Var(654321))},
	}
	for _, tc := range cases {
		w := mkWatcher(tc.c, tc.b)
		if got := w.clause(); got != tc.c {
			t.Errorf("mkWatcher(%d, %d).clause() = %d, want %d", tc.c, tc.b, got, tc.c)
		}
		if got := w.blocker(); got != tc.b {
			t.Errorf("mkWatcher(%d, %d).blocker() = %d, want %d", tc.c, tc.b, got, tc.b)
		}
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		c := cref(rng.Int31())
		b := Lit(rng.Int31())
		w := mkWatcher(c, b)
		if w.clause() != c || w.blocker() != b {
			t.Fatalf("round trip failed: (%d, %d) -> (%d, %d)", c, b, w.clause(), w.blocker())
		}
	}
}

// mkLearnt allocates an attached learnt clause over three fresh variables
// with the given LBD and activity, appended to the solver's learnt list.
func mkLearnt(s *Solver, vars [3]Var, lbd int32, act float32) cref {
	c := s.ca.alloc([]Lit{PosLit(vars[0]), PosLit(vars[1]), PosLit(vars[2])}, true)
	s.ca.setLBD(c, lbd)
	s.ca.setAct(c, act)
	s.attach(c)
	s.learnts = append(s.learnts, c)
	return c
}

// TestReduceDBKeepsCoreTier pins the tier policy: core-tier clauses
// (LBD ≤ tierCoreLBD) always survive a reduction; mid/local clauses with
// the used flag survive exactly one round (the flag is cleared); among the
// remaining candidates the local tier (LBD > tierMidLBD) is deleted
// before the mid tier.
func TestReduceDBKeepsCoreTier(t *testing.T) {
	const nVars = 200
	s := newSolverWith(nVars, [][]Lit{{PosLit(0), PosLit(1)}}, Options{DisableSimp: true})
	s.flushWatches()

	nextVar := Var(3)
	fresh := func() [3]Var {
		v := nextVar
		nextVar += 3
		return [3]Var{v, v + 1, v + 2}
	}

	var core, used, mid, local []cref
	for i := 0; i < 4; i++ {
		core = append(core, mkLearnt(s, fresh(), tierCoreLBD, 0.1))
	}
	for i := 0; i < 4; i++ {
		c := mkLearnt(s, fresh(), tierMidLBD+3, 0.1)
		s.ca.markUsed(c)
		used = append(used, c)
	}
	for i := 0; i < 6; i++ {
		mid = append(mid, mkLearnt(s, fresh(), tierMidLBD, float32(i)))
	}
	for i := 0; i < 6; i++ {
		local = append(local, mkLearnt(s, fresh(), tierMidLBD+5, float32(i)))
	}

	s.reduceDB()

	for i, c := range core {
		if s.ca.deleted(c) {
			t.Errorf("core-tier clause %d (LBD %d) deleted by reduceDB", i, tierCoreLBD)
		}
	}
	for i, c := range used {
		if s.ca.deleted(c) {
			t.Errorf("used local clause %d deleted despite its reprieve", i)
		}
		if s.ca.used(c) {
			t.Errorf("used flag on clause %d not cleared: it would never expire", i)
		}
	}
	// 12 unused candidates, worse half deleted: all 6 local-tier clauses
	// go first, every mid-tier clause survives this round.
	for i, c := range local {
		if !s.ca.deleted(c) {
			t.Errorf("local-tier clause %d survived while the candidate half-limit covered all locals", i)
		}
	}
	for i, c := range mid {
		if s.ca.deleted(c) {
			t.Errorf("mid-tier clause %d deleted before the local tier was exhausted", i)
		}
	}

	// The reprieve is one round: with nothing re-marked, a second reduction
	// must delete the formerly-used local clauses ahead of the mid tier.
	// 10 candidates remain (4 expired locals + 6 mids), so the worse half
	// is the locals plus exactly one mid — the lowest-activity one, pinning
	// the activity tie-break within a tier.
	s.reduceDB()
	for i, c := range used {
		if !s.ca.deleted(c) {
			t.Errorf("formerly-used local clause %d survived a second reduction without being re-used", i)
		}
	}
	if !s.ca.deleted(mid[0]) {
		t.Error("lowest-activity mid clause survived round two; activity tie-break broken")
	}
	for i, c := range mid[1:] {
		if s.ca.deleted(c) {
			t.Errorf("mid-tier clause %d deleted on round two ahead of lower-activity siblings", i+1)
		}
	}
	for i, c := range core {
		if s.ca.deleted(c) {
			t.Errorf("core-tier clause %d deleted on round two", i)
		}
	}
}
