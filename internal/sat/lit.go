// Package sat implements a conflict-driven clause-learning (CDCL)
// boolean satisfiability solver in the MiniSat tradition: two-watched-literal
// propagation, first-UIP conflict analysis, exponential VSIDS variable
// activities, phase saving, Luby restarts, and LBD-based learnt-clause
// database reduction. It supports incremental solving under assumptions and
// reports a final-conflict assumption core on UNSAT.
//
// The solver is the bottom of the Muppet stack: relational formulas are
// grounded to boolean circuits (package boolcirc), emitted here as CNF via
// the Tseitin transformation, and solved. It stands in for the SAT backend
// that Kodkod/Pardinus bundle in the paper's prototype.
package sat

import "fmt"

// Var identifies a boolean variable. Valid variables are ≥ 0 and are created
// with Solver.NewVar.
type Var int32

// Lit is a literal: a variable or its negation, encoded MiniSat-style as
// 2*var for the positive literal and 2*var+1 for the negation.
type Lit int32

// LitUndef is the sentinel "no literal" value.
const LitUndef Lit = -1

// MkLit builds a literal from a variable. neg selects the negation.
func MkLit(v Var, neg bool) Lit {
	if neg {
		return Lit(2*v + 1)
	}
	return Lit(2 * v)
}

// PosLit returns the positive literal of v.
func PosLit(v Var) Lit { return Lit(2 * v) }

// NegLit returns the negative literal of v.
func NegLit(v Var) Lit { return Lit(2*v + 1) }

// Not returns the complementary literal.
func (l Lit) Not() Lit { return l ^ 1 }

// Var returns the literal's variable.
func (l Lit) Var() Var { return Var(l >> 1) }

// Neg reports whether l is a negated literal.
func (l Lit) Neg() bool { return l&1 == 1 }

// String renders the literal as "x7" or "¬x7".
func (l Lit) String() string {
	if l == LitUndef {
		return "lit(undef)"
	}
	if l.Neg() {
		return fmt.Sprintf("¬x%d", l.Var())
	}
	return fmt.Sprintf("x%d", l.Var())
}

// lbool is a lifted boolean: true, false, or undefined.
type lbool int8

const (
	lUndef lbool = 0
	lTrue  lbool = 1
	lFalse lbool = -1
)

// xorSign flips a lifted boolean when the literal is negative.
func (b lbool) xorSign(neg bool) lbool {
	if neg {
		return -b
	}
	return b
}
