package sat

import (
	"math/rand"
	"testing"
)

// randomClauses builds a random CNF over nVars variables of the solver s
// (which must already own them).
func randomClauses(rng *rand.Rand, nVars, nClauses int) [][]Lit {
	var out [][]Lit
	for i := 0; i < nClauses; i++ {
		width := 1 + rng.Intn(3)
		seen := map[Var]bool{}
		var c []Lit
		for len(c) < width {
			v := Var(rng.Intn(nVars))
			if seen[v] {
				continue
			}
			seen[v] = true
			c = append(c, MkLit(v, rng.Intn(2) == 0))
		}
		out = append(out, c)
	}
	return out
}

func satisfies(clauses [][]Lit, model []bool) bool {
	for _, c := range clauses {
		ok := false
		for _, l := range c {
			if model[l.Var()] != l.Neg() {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// TestSimpMatchesNoSimpVerdicts is the solver-level equivalence check:
// over random formulas, preprocessing changes neither the verdict nor the
// validity of the returned model.
func TestSimpMatchesNoSimpVerdicts(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 300; iter++ {
		nVars := 4 + rng.Intn(8)
		clauses := randomClauses(rng, nVars, 3+rng.Intn(30))
		run := func(disable bool) (Status, []bool) {
			s := NewWithOptions(Options{DisableSimp: disable, SimpMinClauses: -1})
			for i := 0; i < nVars; i++ {
				s.NewVar()
			}
			for _, c := range clauses {
				if !s.AddClause(c...) {
					return Unsat, nil
				}
			}
			st := s.Solve()
			if st == Sat {
				return st, s.Model()
			}
			return st, nil
		}
		stOn, mOn := run(false)
		stOff, _ := run(true)
		if stOn != stOff {
			t.Fatalf("iter %d: simp verdict %v, plain verdict %v\n%v", iter, stOn, stOff, clauses)
		}
		if stOn == Sat && !satisfies(clauses, mOn) {
			t.Fatalf("iter %d: extended model does not satisfy the formula\n%v", iter, clauses)
		}
	}
}

// TestSimpIncrementalAddRestores checks that adding a clause over an
// eliminated variable restores it and keeps verdicts exact.
func TestSimpIncrementalAddRestores(t *testing.T) {
	s := NewWithOptions(Options{SimpMinClauses: -1})
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.Freeze(a)
	// b is a definition variable between a and c; with only a frozen, b
	// and c are elimination candidates.
	s.AddClause(NegLit(a), PosLit(b))
	s.AddClause(NegLit(b), PosLit(c))
	if s.Solve() != Sat {
		t.Fatal("want sat")
	}
	if !s.Eliminated(b) && !s.Eliminated(c) {
		t.Fatal("expected at least one of b, c to be eliminated")
	}
	// A new clause forcing ¬c and then a: propagation must see a → b → c
	// again, so the chain must be restored.
	s.AddClause(NegLit(c))
	s.AddClause(PosLit(a))
	if st := s.Solve(); st != Unsat {
		t.Fatalf("want unsat after restoring chain, got %v", st)
	}
}

// TestSimpFrozenAssumptionsSurvive checks that variables only ever used
// as assumptions keep working: Solve freezes them on the fly.
func TestSimpFrozenAssumptionsSurvive(t *testing.T) {
	s := NewWithOptions(Options{SimpMinClauses: -1})
	sel, x := s.NewVar(), s.NewVar()
	s.AddClause(NegLit(sel), PosLit(x))
	s.AddClause(NegLit(sel), NegLit(x))
	if st := s.Solve(); st != Sat {
		t.Fatalf("unconstrained solve: want sat, got %v", st)
	}
	if st := s.Solve(PosLit(sel)); st != Unsat {
		t.Fatalf("assuming sel: want unsat, got %v", st)
	}
	core := s.Core()
	if len(core) != 1 || core[0] != PosLit(sel) {
		t.Fatalf("core = %v, want [sel]", core)
	}
}

// TestSimpStatsReported checks the counters surface.
func TestSimpStatsReported(t *testing.T) {
	s := NewWithOptions(Options{SimpMinClauses: -1})
	vs := make([]Var, 8)
	for i := range vs {
		vs[i] = s.NewVar()
	}
	// A chain of definitions: plenty to eliminate.
	for i := 0; i+1 < len(vs); i++ {
		s.AddClause(NegLit(vs[i]), PosLit(vs[i+1]))
	}
	if s.Solve() != Sat {
		t.Fatal("want sat")
	}
	if s.Stats.SimpRuns == 0 {
		t.Fatal("expected a preprocessing run")
	}
	if s.Stats.SimpVarsEliminated == 0 {
		t.Fatal("expected eliminated variables")
	}
}

// TestSimpCloneReplaysSimplifiedDB checks a clone of a simplified solver
// still reaches the right verdicts and models.
func TestSimpCloneReplaysSimplifiedDB(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 100; iter++ {
		nVars := 5 + rng.Intn(6)
		clauses := randomClauses(rng, nVars, 4+rng.Intn(20))
		s := NewWithOptions(Options{SimpMinClauses: -1})
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		ok := true
		for _, c := range clauses {
			if !s.AddClause(c...) {
				ok = false
				break
			}
		}
		var st Status = Unsat
		if ok {
			st = s.Solve()
		}
		clone := s.CloneWithOptions(Options{PhaseSeed: 3, SimpMinClauses: -1})
		cst := clone.Solve()
		if cst != st {
			t.Fatalf("iter %d: clone verdict %v, original %v", iter, cst, st)
		}
	}
}
