package sat

// Scheduled inprocessing: between restarts — the one point mid-search
// where the trail is back at level 0 — the solver periodically (1) probes
// problem clauses with clause vivification, shrinking or deleting them,
// and (2) re-runs the internal/simp preprocessor so bounded variable
// elimination sees the clauses learnt since the last pass. Assumption
// variables are frozen at Solve entry, so elimination never removes a
// variable the caller will assume or read, and Extend/Restore keep
// incremental sessions correct exactly as for pre-search simplification.

// inprocessDefaultInterval is how many conflicts pass between ticks.
const inprocessDefaultInterval = 4000

// bveTickPeriod: a full preprocessor re-run (subsumption + BVE + database
// rebuild) costs far more than a vivification round, so it runs only on
// every bveTickPeriod-th tick.
const bveTickPeriod = 4

// vivifyPropBudget bounds the unit-propagation work of one vivification
// round; the rolling cursor resumes where the budget ran out.
const vivifyPropBudget = 100_000

// vivifyMinSize: clauses shorter than this are not probed — binary
// clauses cannot shrink usefully and propagate cheaply anyway.
const vivifyMinSize = 3

func (s *Solver) inprocessInterval() int64 {
	if s.opts.InprocessInterval > 0 {
		return s.opts.InprocessInterval
	}
	return inprocessDefaultInterval
}

// vivifyBudget resolves the per-round propagation budget (Options
// override, -1 → off).
func (s *Solver) vivifyBudget() int64 {
	switch {
	case s.opts.VivifyPropBudget > 0:
		return s.opts.VivifyPropBudget
	case s.opts.VivifyPropBudget < 0:
		return 0
	}
	return vivifyPropBudget
}

// bvePeriod resolves how many ticks pass between preprocessor re-runs.
func (s *Solver) bvePeriod() int64 {
	if s.opts.BVETickPeriod > 0 {
		return s.opts.BVETickPeriod
	}
	return bveTickPeriod
}

// maybeInprocess runs an inprocessing tick if enough conflicts have
// accumulated. Called from Solve's restart loop at decision level 0.
func (s *Solver) maybeInprocess() {
	if s.opts.DisableInprocess || s.opts.DisableLearning ||
		s.opts.NaivePropagation || s.unsatLevel0 {
		return
	}
	if s.Stats.Conflicts < s.nextInprocess {
		return
	}
	s.nextInprocess = s.Stats.Conflicts + s.inprocessInterval()
	s.inprocessTicks++
	s.Stats.InprocessRuns++

	s.vivifyRound()
	if s.unsatLevel0 {
		return
	}
	if !s.opts.DisableSimp && s.inprocessTicks%s.bvePeriod() == 0 &&
		len(s.clauses) >= s.simpMinClauses() {
		s.runSimplify()
	}
}

// vivifyRound probes clauses at level 0: for clause c = l1∨…∨ln it
// assumes ¬l1,…,¬lk in turn and unit-propagates. A conflict means the
// first k literals already form a valid (shorter) clause; a literal
// propagated true means the clause is implied by its prefix plus that
// literal; a literal propagated false is redundant and dropped. The
// clause is eagerly detached while probing (otherwise it would justify
// its own literals) and reattached, shrunk in place, afterwards.
//
// Problem clauses are probed first; whatever budget remains goes to the
// core/mid-tier learnt clauses — exactly the clauses reduceDB keeps, so
// shortening them pays off for the rest of the database's lifetime.
func (s *Solver) vivifyRound() {
	if s.decisionLevel() != 0 {
		return
	}
	startProps := s.Stats.Propagations
	budget := s.vivifyBudget()
	if budget <= 0 {
		return
	}
	for visited := 0; visited < len(s.clauses); visited++ {
		if s.Stats.Propagations-startProps > budget {
			return
		}
		if s.vivifyHead >= len(s.clauses) {
			s.vivifyHead = 0
		}
		c := s.clauses[s.vivifyHead]
		s.vivifyHead++
		if s.ca.deleted(c) || s.ca.size(c) < vivifyMinSize {
			continue
		}
		if !s.vivifyClause(c) {
			return // level-0 contradiction
		}
	}
	for visited := 0; visited < len(s.learnts); visited++ {
		if s.Stats.Propagations-startProps > budget {
			return
		}
		if s.vivifyLearntHead >= len(s.learnts) {
			s.vivifyLearntHead = 0
		}
		c := s.learnts[s.vivifyLearntHead]
		s.vivifyLearntHead++
		if s.ca.deleted(c) || s.ca.size(c) < vivifyMinSize ||
			s.ca.lbd(c) > tierMidLBD {
			continue
		}
		if !s.vivifyClause(c) {
			return
		}
	}
}

// vivifyClause probes one clause; reports false on level-0 unsat.
func (s *Solver) vivifyClause(c cref) bool {
	lits := s.ca.lits(c)
	// Detach both watchers before touching the assignment: the probe must
	// not be allowed to use c itself.
	s.removeWatch(lits[0], c)
	s.removeWatch(lits[1], c)

	s.newDecisionLevel()
	keep := 0          // live prefix literals, compacted to the front
	satisfied := false // clause deletable: satisfied at level 0
	done := false
	for i := 0; i < len(lits) && !done; i++ {
		l := lits[i]
		switch s.value(l) {
		case lTrue:
			if s.level[l.Var()] == 0 {
				// True regardless of the probe assumptions: delete.
				satisfied = true
			} else {
				// ¬l1…¬l(keep) ⊨ l: the clause shrinks to prefix ∨ l.
				lits[keep] = l
				keep++
			}
			done = true
		case lFalse:
			// Redundant under the prefix assumptions (or false at level 0
			// outright): drop l and keep scanning the rest.
		default:
			lits[keep] = l
			keep++
			s.uncheckedEnqueue(l.Not(), crefUndef)
			if s.propagate() != crefUndef {
				// The prefix alone is contradictory when all false — i.e.
				// the prefix is a valid clause on its own.
				done = true
			}
		}
	}
	s.cancelUntil(0)

	oldSize := len(lits)
	switch {
	case satisfied:
		s.detach(c) // watchers already removed; flag reclaims the words
		s.Stats.Vivified++
		s.Stats.VivifyLits += int64(oldSize)
		return true
	case keep == oldSize:
		s.attach(c) // nothing changed
		return true
	}
	s.Stats.Vivified++
	s.Stats.VivifyLits += int64(oldSize - keep)
	switch keep {
	case 0:
		s.unsatLevel0 = true
		return false
	case 1:
		u := lits[0]
		s.detach(c)
		if s.value(u) != lTrue {
			s.uncheckedEnqueue(u, crefUndef)
			if s.propagate() != crefUndef {
				s.unsatLevel0 = true
				return false
			}
		}
		return true
	}
	s.ca.shrink(c, keep)
	s.attach(c)
	return true
}
