package sat

import (
	"context"
	"math/rand"
	"runtime"
	"testing"
	"time"
)

// newSolverFromCNF loads clauses over nVars fresh variables.
func newSolverFromCNF(nVars int, clauses [][]Lit) *Solver {
	s := New()
	for i := 0; i < nVars; i++ {
		s.NewVar()
	}
	for _, c := range clauses {
		if !s.AddClause(c...) {
			return s
		}
	}
	return s
}

// TestPortfolioAgreesWithSequential races the default portfolio on random
// CNFs and checks the verdict matches a sequential solve of the same
// problem: the portfolio is a performance feature, never a semantic one.
func TestPortfolioAgreesWithSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 60; i++ {
		nVars := 4 + rng.Intn(10)
		clauses := randomCNF(rng, nVars, 3+rng.Intn(5*nVars), 3)

		seq := newSolverFromCNF(nVars, clauses)
		want := seq.Solve()

		par := newSolverFromCNF(nVars, clauses)
		pr := par.SolvePortfolio(context.Background(), Budget{}, DefaultPortfolio(4))
		if pr.Status != want {
			t.Fatalf("case %d: portfolio %v, sequential %v", i, pr.Status, want)
		}
		switch pr.Status {
		case Sat:
			// The installed model must satisfy every clause.
			model := par.Model()
			for _, c := range clauses {
				ok := false
				for _, l := range c {
					if model[l.Var()] != l.Neg() {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("case %d: winner model violates clause %v", i, c)
				}
			}
			if pr.Winner < 0 || !pr.Workers[pr.Winner].Winner {
				t.Fatalf("case %d: sat without attributed winner: %+v", i, pr)
			}
		case Unsat:
			if pr.Winner < 0 {
				t.Fatalf("case %d: unsat without attributed winner", i)
			}
		}
	}
}

// TestPortfolioAssumptionCore checks that an Unsat portfolio verdict under
// assumptions installs a failed-assumption core drawn from the assumptions
// (Core returns literals in assumption polarity).
func TestPortfolioAssumptionCore(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(NegLit(a), PosLit(b))
	s.AddClause(NegLit(b), PosLit(c))
	assumps := []Lit{PosLit(a), NegLit(c)}
	pr := s.SolvePortfolio(context.Background(), Budget{}, DefaultPortfolio(3), assumps...)
	if pr.Status != Unsat {
		t.Fatalf("got %v, want Unsat", pr.Status)
	}
	core := s.Core()
	if len(core) == 0 {
		t.Fatal("no failed-assumption core installed")
	}
	allowed := map[Lit]bool{}
	for _, l := range assumps {
		allowed[l] = true
	}
	for _, l := range core {
		if !allowed[l] {
			t.Fatalf("core literal %v is not one of the assumptions", l)
		}
	}
}

// TestPortfolioSingleConfigIsSequential checks the 1-config fast path
// solves on the receiver itself.
func TestPortfolioSingleConfigIsSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	clauses := randomCNF(rng, 8, 30, 3)
	s := newSolverFromCNF(8, clauses)
	want := newSolverFromCNF(8, clauses).Solve()
	pr := s.SolvePortfolio(context.Background(), Budget{}, DefaultPortfolio(1))
	if pr.Status != want {
		t.Fatalf("got %v, want %v", pr.Status, want)
	}
	if len(pr.Workers) != 1 {
		t.Fatalf("expected 1 worker, got %d", len(pr.Workers))
	}
}

// TestPortfolioCancellation checks a cancelled context stops every worker
// and leaks no goroutines.
func TestPortfolioCancellation(t *testing.T) {
	before := runtime.NumGoroutine()

	// A hard random instance keeps workers busy long enough to observe
	// the cancellation (pigeonhole-like: big random 3-CNF).
	rng := rand.New(rand.NewSource(99))
	clauses := randomCNF(rng, 120, 560, 3)
	s := newSolverFromCNF(120, clauses)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: every worker must stop promptly
	pr := s.SolvePortfolio(ctx, Budget{}, DefaultPortfolio(4))
	if pr.Status == Unknown && s.StopReason() != StopCancelled {
		t.Fatalf("cancelled portfolio: stop reason %v", s.StopReason())
	}

	// SolvePortfolio joins its workers before returning, so any surviving
	// goroutine is a leak. Allow the runtime a moment to retire them.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutine leak: %d before, %d after", before, n)
	}
}

// TestPortfolioBudget checks a conflict budget propagates to the workers:
// a hard instance under a tiny budget comes back Unknown.
func TestPortfolioBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	clauses := randomCNF(rng, 150, 700, 3)
	s := newSolverFromCNF(150, clauses)
	pr := s.SolvePortfolio(context.Background(), Budget{MaxConflicts: 1}, DefaultPortfolio(3))
	if pr.Status != Unknown {
		t.Skipf("instance too easy for the budget test: %v", pr.Status)
	}
	for _, w := range pr.Workers {
		if w.Status == Unknown && w.Stop == StopNone {
			t.Fatalf("worker %s stopped without a reason", w.Name)
		}
	}
}

// TestDiversifiedOptionsStayCorrect solves random CNFs under every
// diversification axis directly, against brute force.
func TestDiversifiedOptionsStayCorrect(t *testing.T) {
	optsList := []Options{
		{RestartBase: 32},
		{RestartBase: 512},
		{PhaseSeed: 0xdeadbeef},
		{LearntCap: 10},
		{PhaseSeed: 42, LearntCap: 50, RestartBase: 64},
	}
	rng := rand.New(rand.NewSource(23))
	for ci, opts := range optsList {
		for i := 0; i < 25; i++ {
			nVars := 3 + rng.Intn(7)
			clauses := randomCNF(rng, nVars, 2+rng.Intn(4*nVars), 3)
			want := bruteForce(nVars, clauses)
			s := NewWithOptions(opts)
			for v := 0; v < nVars; v++ {
				s.NewVar()
			}
			ok := true
			for _, c := range clauses {
				if !s.AddClause(c...) {
					ok = false
					break
				}
			}
			st := Unsat
			if ok {
				st = s.Solve()
			}
			if (st == Sat) != want {
				t.Fatalf("opts %d case %d: got %v, brute force says sat=%v", ci, i, st, want)
			}
		}
	}
}

// TestCloneWithOptionsReplaysProblem checks a clone sees the same problem:
// identical verdicts, and clone-side solving never disturbs the original.
func TestCloneWithOptionsReplaysProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 40; i++ {
		nVars := 4 + rng.Intn(8)
		clauses := randomCNF(rng, nVars, 3+rng.Intn(4*nVars), 3)
		orig := newSolverFromCNF(nVars, clauses)
		want := orig.Solve() // also populates level-0 trail / learnt state
		clone := orig.CloneWithOptions(Options{PhaseSeed: 7})
		if got := clone.Solve(); got != want {
			t.Fatalf("case %d: clone %v, original %v", i, got, want)
		}
		if got := orig.Solve(); got != want {
			t.Fatalf("case %d: original changed verdict after clone solve: %v vs %v", i, got, want)
		}
	}
}
