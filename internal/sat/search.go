package sat

import "sort"

// analyze derives a first-UIP learnt clause from a conflict. It returns the
// learnt literals (asserting literal first) and the backtrack level. The
// returned slice is the solver's reused scratch buffer: callers must copy
// it (into the arena) before the next analyze call.
func (s *Solver) analyze(confl cref) ([]Lit, int32) {
	learnt := s.analyzeBuf[:0]
	learnt = append(learnt, LitUndef) // slot for the asserting literal
	pathC := 0
	var p Lit = LitUndef
	idx := len(s.trail) - 1

	for {
		if confl == crefUndef {
			panic("sat: analyze reached a reason-less literal before the first UIP")
		}
		if s.ca.learnt(confl) {
			s.claBump(confl)
			// Tier bookkeeping (see reduceDB): an antecedent earns one
			// round of reprieve, and its LBD is recomputed Glucose-style —
			// a clause that got "stickier" can be promoted into the core
			// tier, never demoted.
			s.ca.markUsed(confl)
			if s.ca.lbd(confl) > tierCoreLBD {
				if nl := s.computeLBD(s.ca.lits(confl)); nl < s.ca.lbd(confl) {
					s.ca.setLBD(confl, nl)
				}
			}
		}
		clits := s.ca.lits(confl)
		if p != LitUndef {
			clits = clits[1:] // skip the asserting literal of the reason clause
		}
		for _, q := range clits {
			v := q.Var()
			if s.seen[v] != 0 || s.level[v] == 0 {
				continue
			}
			s.seen[v] = 1
			s.varBump(v)
			if s.level[v] >= s.decisionLevel() {
				pathC++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Find the next seen literal on the trail.
		for s.seen[s.trail[idx].Var()] == 0 {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.seen[p.Var()] = 0
		pathC--
		if pathC == 0 {
			break
		}
		confl = s.reason[p.Var()]
	}
	learnt[0] = p.Not()

	// Snapshot the variables whose seen flags must be cleared: the in-place
	// compaction below overwrites dropped literals (MiniSat keeps a separate
	// analyze_toclear list for the same reason).
	toClear := s.toClear[:0]
	for _, l := range learnt {
		toClear = append(toClear, l.Var())
	}
	s.toClear = toClear[:0]

	// Conflict-clause minimisation: drop literals implied by the rest.
	j := 1
	for i := 1; i < len(learnt); i++ {
		v := learnt[i].Var()
		if s.reason[v] == crefUndef || !s.litRedundant(learnt[i]) {
			learnt[j] = learnt[i]
			j++
		}
	}
	minimized := learnt[:j]

	for _, v := range toClear {
		s.seen[v] = 0
	}

	btLevel := int32(0)
	if len(minimized) > 1 {
		// Move the highest-level non-asserting literal to position 1.
		maxI := 1
		for i := 2; i < len(minimized); i++ {
			if s.level[minimized[i].Var()] > s.level[minimized[maxI].Var()] {
				maxI = i
			}
		}
		minimized[1], minimized[maxI] = minimized[maxI], minimized[1]
		btLevel = s.level[minimized[1].Var()]
	}
	s.analyzeBuf = learnt[:0]
	return minimized, btLevel
}

// litRedundant reports whether l is implied by the other literals of the
// learnt clause via its reason clause (MiniSat's ccmin_mode=1 local
// minimisation: every antecedent literal must itself be seen or at level 0).
func (s *Solver) litRedundant(l Lit) bool {
	c := s.reason[l.Var()]
	for _, q := range s.ca.lits(c)[1:] {
		v := q.Var()
		if s.seen[v] == 0 && s.level[v] != 0 {
			return false
		}
	}
	return true
}

// computeLBD returns the number of distinct decision levels among a
// clause's literals — the "literal block distance" quality measure. The
// per-level stamp array replaces the map the old implementation allocated
// on every conflict.
func (s *Solver) computeLBD(lits []Lit) int32 {
	s.lbdTick++
	if s.lbdTick == 0 { // wrapped: stale stamps could collide
		for i := range s.levelStamp {
			s.levelStamp[i] = 0
		}
		s.lbdTick = 1
	}
	tick := s.lbdTick
	var n int32
	for _, l := range lits {
		lv := s.level[l.Var()]
		for int(lv) >= len(s.levelStamp) {
			s.levelStamp = append(s.levelStamp, 0)
		}
		if s.levelStamp[lv] != tick {
			s.levelStamp[lv] = tick
			n++
		}
	}
	return n
}

// subsumes reports whether every literal of small occurs in the clause c —
// the on-the-fly subsumption test run after conflict analysis.
func (s *Solver) subsumes(small []Lit, c cref) bool {
	clits := s.ca.lits(c)
outer:
	for _, l := range small {
		for _, q := range clits {
			if q == l {
				continue outer
			}
		}
		return false
	}
	return true
}

// analyzeFinal computes the set of assumption literals responsible for
// forcing p false, storing their negations in s.conflict.
func (s *Solver) analyzeFinal(p Lit) {
	s.conflict = s.conflict[:0]
	s.conflict = append(s.conflict, p)
	if s.decisionLevel() == 0 {
		return
	}
	s.seen[p.Var()] = 1
	for i := len(s.trail) - 1; i >= int(s.trailLim[0]); i-- {
		v := s.trail[i].Var()
		if s.seen[v] == 0 {
			continue
		}
		if s.reason[v] == crefUndef {
			// Decision ⇒ assumption at this point of the search.
			s.conflict = append(s.conflict, s.trail[i].Not())
		} else {
			for _, q := range s.ca.lits(s.reason[v])[1:] {
				if s.level[q.Var()] > 0 {
					s.seen[q.Var()] = 1
				}
			}
		}
		s.seen[v] = 0
	}
	s.seen[p.Var()] = 0
}

// Learnt-clause tier boundaries (CaDiCaL-style): core clauses (LBD ≤ 2,
// "glue") are kept forever; mid clauses (LBD ≤ 6) and local clauses
// survive a reduction only if they served as a conflict antecedent since
// the previous one, with mid-tier clauses deleted last among the
// candidates.
const (
	tierCoreLBD = 2
	tierMidLBD  = 6
)

// reduceDB trims the learnt-clause database by tier instead of by a flat
// activity sort: core-tier clauses, reason clauses, and binaries are kept
// unconditionally; mid/local clauses used since the last reduction get
// one round of reprieve (and their used flag cleared, so they must earn
// the next one); the remaining candidates are ranked local-tier first,
// then by descending LBD and ascending activity, and the worse half is
// deleted. Entries already deleted on the fly are purged, and the arena
// is compacted when enough of it has died.
func (s *Solver) reduceDB() {
	ca := &s.ca
	locked := func(c cref) bool {
		v := ca.lits(c)[0].Var()
		return s.assigns[v] != lUndef && s.reason[v] == c
	}
	keep := s.learnts[:0]
	cand := make([]cref, 0, len(s.learnts))
	for _, c := range s.learnts {
		if ca.deleted(c) {
			continue // removed on the fly (OTF subsumption)
		}
		switch {
		case ca.lbd(c) <= tierCoreLBD || ca.size(c) <= 2 || locked(c):
			keep = append(keep, c)
		case ca.used(c):
			ca.clearUsed(c)
			keep = append(keep, c)
		default:
			cand = append(cand, c)
		}
	}
	sort.Slice(cand, func(i, j int) bool {
		a, b := cand[i], cand[j]
		if ta, tb := ca.lbd(a) > tierMidLBD, ca.lbd(b) > tierMidLBD; ta != tb {
			return ta // local tier deleted before mid tier
		}
		if la, lb := ca.lbd(a), ca.lbd(b); la != lb {
			return la > lb
		}
		return ca.act(a) < ca.act(b)
	})
	limit := len(cand) / 2
	for i, c := range cand {
		if i < limit {
			s.detach(c)
			s.Stats.Removed++
		} else {
			keep = append(keep, c)
		}
	}
	s.learnts = keep
	// The protected tiers can exceed the limit that triggered this call;
	// grow it past the survivors so reduceDB doesn't re-fire every
	// conflict while deleting nothing.
	if float64(len(s.learnts)) >= s.maxLearnts {
		s.maxLearnts = float64(len(s.learnts))*1.1 + 100
	}
	s.maybeGC()
}

// luby computes the i-th element (1-based) of the Luby restart sequence
// scaled by base.
func luby(base int64, i int64) int64 {
	// Find the finite subsequence containing index i.
	var k uint = 1
	for (int64(1)<<k)-1 < i {
		k++
	}
	for (int64(1)<<k)-1 != i {
		i -= (int64(1) << (k - 1)) - 1
		k = 1
		for (int64(1)<<k)-1 < i {
			k++
		}
	}
	return base << (k - 1)
}

// chronoThreshold is the backjump length past which the solver backtracks
// chronologically (one level) instead: a conflict whose assertion level is
// hundreds of levels down usually reconstructs most of the discarded trail
// verbatim, so keeping it and asserting the learnt literal in place is
// cheaper (Nadel & Ryvchin, SAT'18). Soundness: at any level ≥ the
// assertion level every non-asserting literal of the learnt clause is
// still false, so the clause is unit there too.
const chronoThreshold = 100

// search runs CDCL until a model, a restart or budget exhaustion, a
// cancellation, or an assumption failure. nConflicts bounds this restart's
// conflicts (<0: none). Budget/cancellation stops set s.stopReason, which
// distinguishes them from an ordinary restart in Solve's outer loop.
func (s *Solver) search(nConflicts int64) Status {
	conflicts := int64(0)
	for {
		if r := s.stopCheck(); r != StopNone {
			s.stopReason = r
			s.cancelUntil(0)
			return Unknown
		}
		confl := s.propagate()
		if confl != crefUndef {
			s.Stats.Conflicts++
			conflicts++
			if s.decisionLevel() == 0 {
				s.unsatLevel0 = true
				s.conflict = s.conflict[:0]
				return Unsat
			}
			if s.opts.DisableLearning {
				// Chronological backtracking: flip the most recent decision
				// by learning only the negation of the current decisions.
				decs := make([]Lit, 0, s.decisionLevel())
				for _, ti := range s.trailLim {
					d := s.trail[ti].Not()
					// Dummy assumption levels duplicate the next decision.
					if n := len(decs); n == 0 || decs[n-1] != d {
						decs = append(decs, d)
					}
				}
				s.cancelUntil(s.decisionLevel() - 1)
				if len(decs) == 1 {
					s.uncheckedEnqueue(decs[0], crefUndef)
				} else {
					// Order for watching: asserting literal first.
					last := len(decs) - 1
					decs[0], decs[last] = decs[last], decs[0]
					c := s.ca.alloc(decs, true)
					s.ca.setLBD(c, s.computeLBD(decs))
					s.learnts = append(s.learnts, c)
					s.attach(c)
					s.uncheckedEnqueue(decs[0], c)
				}
				s.varDecay()
				continue
			}
			learnt, btLevel := s.analyze(confl)
			// On-the-fly subsumption: when the minimized learnt clause is a
			// strict subset of the conflicting learnt clause, the latter is
			// redundant — drop it now instead of carrying both to reduceDB.
			if s.ca.learnt(confl) && len(learnt) < s.ca.size(confl) &&
				len(learnt) <= 30 && s.subsumes(learnt, confl) {
				s.detach(confl)
				s.Stats.OTFSubsumed++
			}
			// Chrono never applies to unit learnts: a unit is a global fact
			// that must live at level 0 — asserted higher it would be a
			// reason-less non-decision literal, which analyze/analyzeFinal
			// (rightly) treat as impossible.
			if !s.opts.DisableChrono && len(learnt) > 1 &&
				s.decisionLevel()-btLevel > chronoThreshold {
				btLevel = s.decisionLevel() - 1
				s.Stats.ChronoBacktracks++
			}
			s.cancelUntil(btLevel)
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], crefUndef)
			} else {
				c := s.ca.alloc(learnt, true)
				s.ca.setLBD(c, s.computeLBD(learnt))
				s.learnts = append(s.learnts, c)
				s.Stats.Learnt++
				s.attach(c)
				s.claBump(c)
				s.uncheckedEnqueue(s.ca.lits(c)[0], c)
			}
			s.varDecay()
			s.claDecay()
			continue
		}

		if nConflicts >= 0 && conflicts >= nConflicts {
			s.cancelUntil(s.assumptionLevel())
			return Unknown // restart
		}
		if !s.opts.DisableLearning && float64(len(s.learnts)) >= s.maxLearnts {
			s.reduceDB()
		}

		// Assumptions first, then free decisions.
		next := LitUndef
		for int(s.decisionLevel()) < len(s.assumptions) {
			a := s.assumptions[s.decisionLevel()]
			switch s.value(a) {
			case lTrue:
				s.newDecisionLevel() // already satisfied; dummy level
				continue
			case lFalse:
				s.analyzeFinal(a.Not())
				return Unsat
			}
			next = a
			break
		}
		if next == LitUndef {
			next = s.pickBranchVar()
			if next == LitUndef {
				return Sat // all variables assigned
			}
			s.Stats.Decisions++
		}
		s.newDecisionLevel()
		s.uncheckedEnqueue(next, crefUndef)
	}
}

// assumptionLevel is the decision level up to which assumptions are pinned;
// restarts must not undo assumption decisions blindly (we conservatively
// restart to level 0 and re-apply, which is simplest and correct).
func (s *Solver) assumptionLevel() int32 { return 0 }

// Solve determines satisfiability of the clause set under the given
// assumption literals. On Sat, Model/Value expose the assignment; on Unsat,
// Core exposes the failed assumptions. Solve may be called repeatedly,
// interleaved with AddClause and NewVar. An Unknown return means a budget
// or cancellation stopped the search (see SolveCtx and StopReason); plain
// Solve can return Unknown only via the legacy Options.MaxConflicts cap.
func (s *Solver) Solve(assumps ...Lit) Status {
	s.stopReason = StopNone
	if s.unsatLevel0 {
		s.conflict = s.conflict[:0]
		return Unsat
	}
	// Pre-flight: an already-expired deadline or cancelled context must not
	// start (and potentially finish) a search whose verdict the caller has
	// declared itself unwilling to wait for.
	if r := s.stopNow(); r != StopNone {
		s.stopReason = r
		return Unknown
	}
	s.cancelUntil(0)
	s.flushWatches()
	if confl := s.propagate(); confl != crefUndef {
		s.unsatLevel0 = true
		s.conflict = s.conflict[:0]
		return Unsat
	}
	// Preprocess before search: assumption variables are frozen (and, if a
	// previous run eliminated them, restored) so the assumptions name live
	// variables, then the clause database is simplified if it is fresh or
	// has grown enough since the last run. See simplify.go.
	if !s.opts.DisableSimp {
		for _, a := range assumps {
			s.Freeze(a.Var())
		}
		s.maybeSimplify()
		if s.unsatLevel0 {
			s.conflict = s.conflict[:0]
			return Unsat
		}
	}
	s.assumptions = assumps
	defer func() { s.assumptions = nil }()

	s.maxLearnts = float64(len(s.clauses)) / 3
	if s.maxLearnts < 1000 {
		s.maxLearnts = 1000
	}
	if s.opts.LearntCap > 0 {
		s.maxLearnts = float64(s.opts.LearntCap)
	}
	if s.nextInprocess == 0 {
		s.nextInprocess = s.Stats.Conflicts + s.inprocessInterval()
	}

	var restart int64 = 1
	for {
		budget := int64(-1)
		if !s.opts.DisableRestarts {
			budget = luby(s.opts.restartBase(), restart)
		}
		st := s.search(budget)
		switch st {
		case Sat:
			s.model = make([]bool, len(s.assigns))
			for v := range s.assigns {
				s.model[v] = s.assigns[v] == lTrue
			}
			s.extendModel()
			s.cancelUntil(0)
			return Sat
		case Unsat:
			s.cancelUntil(0)
			return Unsat
		}
		if s.stopReason != StopNone {
			return Unknown // budget or cancellation, not a restart
		}
		s.Stats.Restarts++
		restart++
		if s.opts.LearntCap <= 0 {
			s.maxLearnts *= s.learntGrowth
		}
		// Between restarts the trail is at the assumption level (0) — the
		// one place mid-search where inprocessing is safe to run.
		s.maybeInprocess()
		if s.unsatLevel0 {
			s.conflict = s.conflict[:0]
			return Unsat
		}
	}
}

// Okay reports whether the clause set is still possibly satisfiable (no
// empty clause has been derived at level 0).
func (s *Solver) Okay() bool { return !s.unsatLevel0 }
