package sat

import "muppet/internal/simp"

// This file couples the solver to the internal/simp preprocessor: the
// clause database is simplified (subsumption, self-subsuming resolution,
// bounded variable elimination) before search, models are extended back
// over eliminated variables, and incremental additions that mention an
// eliminated variable transparently restore it. Preprocessing is on by
// default; Options.DisableSimp is the ablation switch.

// pp returns the solver's preprocessor, allocating it on first use.
func (s *Solver) pp() *simp.Preprocessor {
	if s.elim == nil {
		s.elim = simp.New()
	}
	return s.elim
}

// Freeze marks v as structurally important: preprocessing must never
// eliminate it. Callers freeze every variable whose identity matters
// outside the clause database — variables they will read from models,
// assume, or use as selectors. Assumption variables are additionally
// frozen automatically at each Solve. Freezing an eliminated variable
// restores it first. A no-op under DisableSimp.
func (s *Solver) Freeze(v Var) {
	if s.opts.DisableSimp {
		return
	}
	p := s.pp()
	if p.Eliminated(int32(v)) {
		s.restoreVar(v)
	}
	p.Freeze(int32(v))
}

// FreezeLit freezes the literal's variable.
func (s *Solver) FreezeLit(l Lit) { s.Freeze(l.Var()) }

// Eliminated reports whether v is currently eliminated by preprocessing.
// Eliminated variables occur in no live clause and are excluded from
// decisions; their model values come from the reconstruction stack.
func (s *Solver) Eliminated(v Var) bool { return s.eliminatedVar(v) }

// eliminatedVar is the hot-path form of Eliminated.
func (s *Solver) eliminatedVar(v Var) bool {
	return s.elim != nil && s.elim.Eliminated(int32(v))
}

// restoreVar re-introduces an eliminated variable by re-adding the
// clauses recorded at its elimination. Re-adding may recursively restore
// other eliminated variables those clauses mention.
func (s *Solver) restoreVar(v Var) {
	cls := s.elim.Restore(int32(v))
	if cls == nil {
		return
	}
	s.Stats.SimpRestored++
	s.order.push(v)
	buf := make([]Lit, 0, 8)
	for _, c := range cls {
		buf = buf[:0]
		for _, l := range c {
			buf = append(buf, Lit(l))
		}
		s.AddClause(buf...)
	}
}

// simpMinGrowth is how many new problem clauses must accumulate before
// preprocessing runs again on an already-simplified database.
func simpMinGrowth(base int) int {
	g := base / 4
	if g < 256 {
		g = 256
	}
	return g
}

// simpDefaultMinClauses is the default preprocessing floor: below it a
// solve finishes faster than a preprocessing pass, so running one is a
// net loss. The Fig. 1 walkthrough (hundreds of clauses) stays under it;
// the generated scaling scenarios from ~6 services upward cross it.
const simpDefaultMinClauses = 4000

// simpMinClauses resolves the Options floor (0 → default, <0 → none).
func (s *Solver) simpMinClauses() int {
	if m := s.opts.SimpMinClauses; m != 0 {
		if m < 0 {
			return 0
		}
		return m
	}
	return simpDefaultMinClauses
}

// maybeSimplify runs preprocessing when the database is big enough to be
// worth it and is fresh or has grown enough since the last run. Called
// from Solve at level 0, after propagation and assumption restoration.
// Below the floor nothing is marked done, so a growing incremental
// session gets its first pass as soon as it crosses the floor.
func (s *Solver) maybeSimplify() {
	if s.opts.DisableSimp || s.unsatLevel0 {
		return
	}
	if !s.simpRan && len(s.clauses) < s.simpMinClauses() {
		return
	}
	if s.simpRan && len(s.clauses) < s.simpWatermark+simpMinGrowth(s.simpWatermark) {
		return
	}
	s.runSimplify()
}

// runSimplify hands the live problem clauses (reduced under the level-0
// assignment) to the preprocessor and rebuilds the solver's clause
// database — a fresh arena with the simplified set — plus watches and
// trail bookkeeping. Learnt clauses survive (with their LBD/activity)
// unless they mention an eliminated variable.
func (s *Solver) runSimplify() {
	s.flushWatches() // queued crefs must not outlive the arena rebuild below
	p := s.pp()
	p.EnsureVars(len(s.assigns))

	// Build the preprocessor input over one flat backing buffer: the total
	// literal count is known from the arena headers, so the buffer never
	// reallocates and the per-clause sub-slices stay valid. (simp copies
	// its input clauses, so handing it views is safe.)
	total := 0
	for _, c := range s.clauses {
		if !s.ca.deleted(c) {
			total += s.ca.size(c)
		}
	}
	buf := make([]simp.Lit, 0, total)
	spans := make([][2]int32, 0, len(s.clauses))
	for _, c := range s.clauses {
		if s.ca.deleted(c) {
			continue
		}
		lo := len(buf)
		sat0 := false
		for _, l := range s.ca.lits(c) {
			switch s.value(l) {
			case lTrue:
				sat0 = true
			case lFalse:
			default:
				buf = append(buf, simp.Lit(l))
			}
			if sat0 {
				break
			}
		}
		if sat0 {
			buf = buf[:lo]
			continue
		}
		switch len(buf) - lo {
		case 0:
			s.unsatLevel0 = true
			return
		case 1:
			// propagate ran just before; still, handle a stray unit.
			u := Lit(buf[lo])
			buf = buf[:lo]
			s.uncheckedEnqueue(u, crefUndef)
			if s.propagate() != crefUndef {
				s.unsatLevel0 = true
				return
			}
		default:
			spans = append(spans, [2]int32{int32(lo), int32(len(buf))})
		}
	}
	in := make([][]simp.Lit, len(spans))
	for i, sp := range spans {
		in[i] = buf[sp[0]:sp[1]]
	}

	res := p.Run(in, func() bool { return s.stopNow() != StopNone })
	s.Stats.SimpRuns++
	s.Stats.SimpVarsEliminated = p.Stats.VarsEliminated
	s.Stats.SimpClausesSubsumed = p.Stats.ClausesSubsumed
	s.Stats.SimpLitsStrengthened = p.Stats.LitsStrengthened
	s.Stats.SimpClausesRemoved += p.Stats.ClausesIn - p.Stats.ClausesOut
	if res.Unsat {
		s.unsatLevel0 = true
		return
	}

	// Rebuild the arena from scratch: the simplified problem clauses first,
	// then the surviving learnts copied over with their LBD and activity.
	// Rebuilding (rather than patching) leaves zero wasted words and packs
	// the post-simplification database contiguously.
	words := 0
	for _, lits := range res.Clauses {
		words += len(lits) + claHdrWords
	}
	newCA := clauseDB{data: make([]Lit, 0, words)}
	newCls := make([]cref, 0, len(res.Clauses))
	conv := make([]Lit, 0, 16)
	for _, lits := range res.Clauses {
		conv = conv[:0]
		for _, l := range lits {
			conv = append(conv, Lit(l))
		}
		newCls = append(newCls, newCA.alloc(conv, false))
	}
	newLrn := make([]cref, 0, len(s.learnts))
	for _, c := range s.learnts {
		if s.ca.deleted(c) {
			continue
		}
		drop := false
		for _, l := range s.ca.lits(c) {
			if p.Eliminated(int32(l.Var())) {
				drop = true
				break
			}
		}
		if drop {
			s.Stats.Removed++
			continue
		}
		n := newCA.alloc(s.ca.lits(c), true)
		newCA.data[n] |= s.ca.data[c] & claFlagUsed // tier reprieve flag
		newCA.setLBD(n, s.ca.lbd(c))
		newCA.setAct(n, s.ca.act(c))
		newLrn = append(newLrn, n)
	}
	s.ca = newCA
	s.clauses = newCls
	s.learnts = newLrn
	s.vivifyHead = 0 // the rolling vivification cursors index the lists
	s.vivifyLearntHead = 0

	for i := range s.watches {
		s.watches[i] = s.watches[i][:0]
	}
	s.nWatched = 0
	if s.opts.NaivePropagation {
		for i := range s.occs {
			s.occs[i] = s.occs[i][:0]
		}
		for _, c := range s.clauses {
			s.attach(c)
		}
		for _, c := range s.learnts {
			s.attach(c)
		}
	} else {
		// Re-attaching one clause at a time would redo the per-literal grow
		// chains the bulk loader avoids; carve the rebuilt lists instead.
		s.buildWatches(s.clauses, s.learnts)
	}
	// The level-0 trail survives the rebuild, but its reason references
	// point into the discarded arena; level-0 facts need no reason.
	for _, l := range s.trail {
		s.reason[l.Var()] = crefUndef
	}
	s.qhead = 0
	for _, u := range res.Units {
		l := Lit(u)
		switch s.value(l) {
		case lTrue:
			continue
		case lFalse:
			s.unsatLevel0 = true
			return
		}
		s.uncheckedEnqueue(l, crefUndef)
	}
	if s.propagate() != crefUndef {
		s.unsatLevel0 = true
		return
	}
	s.simpRan = true
	s.simpWatermark = len(s.clauses)
}

// extendModel gives eliminated variables model values consistent with
// their recorded clauses, so Value/Model behave exactly as without
// preprocessing.
func (s *Solver) extendModel() {
	if s.elim != nil {
		s.elim.Extend(s.model)
	}
}
