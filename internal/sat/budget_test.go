package sat

import (
	"context"
	"testing"
	"time"
)

func TestSolveCtxCancelledBeforeStart(t *testing.T) {
	s := New()
	pigeonhole(s, 8, 7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if st := s.SolveCtx(ctx, Budget{}); st != Unknown {
		t.Fatalf("cancelled context: got %v, want UNKNOWN", st)
	}
	if r := s.StopReason(); r != StopCancelled {
		t.Fatalf("stop reason: got %v, want cancelled", r)
	}
}

func TestSolveCtxExpiredDeadline(t *testing.T) {
	s := New()
	pigeonhole(s, 8, 7)
	b := Budget{Deadline: time.Now().Add(-time.Second)}
	if st := s.SolveCtx(context.Background(), b); st != Unknown {
		t.Fatalf("expired deadline: got %v, want UNKNOWN", st)
	}
	if r := s.StopReason(); r != StopDeadline {
		t.Fatalf("stop reason: got %v, want deadline", r)
	}
}

func TestSolveCtxDeadlineInterruptsSearch(t *testing.T) {
	s := New()
	pigeonhole(s, 12, 11) // hard enough to outlast a microscopic deadline
	b := Budget{Deadline: time.Now().Add(time.Microsecond)}
	if st := s.SolveCtx(context.Background(), b); st != Unknown {
		t.Skipf("instance solved before the deadline fired: %v", st)
	}
	if r := s.StopReason(); r != StopDeadline {
		t.Fatalf("stop reason: got %v, want deadline", r)
	}
}

func TestSolveCtxConflictBudget(t *testing.T) {
	s := New()
	pigeonhole(s, 8, 7)
	st := s.SolveCtx(context.Background(), Budget{MaxConflicts: 5})
	if st != Unknown {
		t.Fatalf("conflict budget: got %v, want UNKNOWN", st)
	}
	if r := s.StopReason(); r != StopConflicts {
		t.Fatalf("stop reason: got %v, want conflict budget", r)
	}
	// The budget is per call: a fresh unbudgeted call completes.
	if st := s.Solve(); st != Unsat {
		t.Fatalf("after budget run: got %v, want UNSAT", st)
	}
	if r := s.StopReason(); r != StopNone {
		t.Fatalf("completed solve must clear the stop reason, got %v", r)
	}
}

func TestSolveCtxPropagationBudget(t *testing.T) {
	s := New()
	pigeonhole(s, 8, 7)
	st := s.SolveCtx(context.Background(), Budget{MaxPropagations: 10})
	if st != Unknown {
		t.Fatalf("propagation budget: got %v, want UNKNOWN", st)
	}
	if r := s.StopReason(); r != StopPropagations {
		t.Fatalf("stop reason: got %v, want propagation budget", r)
	}
}

func TestSolveCtxUnlimitedMatchesSolve(t *testing.T) {
	s := New()
	pigeonhole(s, 5, 5)
	if st := s.SolveCtx(context.Background(), Budget{}); st != Sat {
		t.Fatalf("unbudgeted SolveCtx: got %v, want SAT", st)
	}
	if r := s.StopReason(); r != StopNone {
		t.Fatalf("stop reason after SAT: got %v, want none", r)
	}
}

func TestSolveCtxLevel0UnsatBeatsBudget(t *testing.T) {
	// Unsatisfiability already established at level 0 costs nothing to
	// report, so even an expired budget returns the real verdict.
	s := New()
	v := s.NewVar()
	s.AddClause(PosLit(v))
	s.AddClause(NegLit(v))
	b := Budget{Deadline: time.Now().Add(-time.Second)}
	if st := s.SolveCtx(context.Background(), b); st != Unsat {
		t.Fatalf("level-0 unsat: got %v, want UNSAT", st)
	}
}

func TestBudgetWithTimeout(t *testing.T) {
	b := Budget{}.WithTimeout(time.Hour)
	if b.Deadline.IsZero() {
		t.Fatal("WithTimeout must set a deadline")
	}
	earlier := time.Now().Add(time.Minute)
	b2 := Budget{Deadline: earlier}.WithTimeout(time.Hour)
	if !b2.Deadline.Equal(earlier) {
		t.Fatal("WithTimeout must keep an earlier existing deadline")
	}
	if !(Budget{}).IsZero() {
		t.Fatal("zero budget must report IsZero")
	}
	if b.IsZero() {
		t.Fatal("deadline budget must not report IsZero")
	}
}

func TestStopReasonStrings(t *testing.T) {
	for r, want := range map[StopReason]string{
		StopNone:         "none",
		StopCancelled:    "cancelled",
		StopDeadline:     "deadline exceeded",
		StopConflicts:    "conflict budget exhausted",
		StopPropagations: "propagation budget exhausted",
	} {
		if got := r.String(); got != want {
			t.Fatalf("StopReason(%d) = %q, want %q", r, got, want)
		}
	}
}
