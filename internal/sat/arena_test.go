package sat

import (
	"math/rand"
	"testing"
)

// aggressiveOpts makes every hot path of the arena core fire on tiny
// problems: restarts every conflict, inprocessing on every tick, a learnt
// cap small enough to force frequent reduceDB passes, and no preprocessing
// floor so BVE runs even on a handful of clauses.
func aggressiveOpts() Options {
	return Options{
		RestartBase:       1,
		InprocessInterval: 1,
		LearntCap:         5,
		SimpMinClauses:    -1,
	}
}

// decodeCNF turns fuzz bytes into a CNF: the first byte picks the variable
// count, then each zero byte terminates a clause and any other byte b
// contributes the literal with variable (b-1)%nVars and sign ((b-1)/nVars)%2.
func decodeCNF(data []byte) (int, [][]Lit) {
	if len(data) < 2 {
		return 0, nil
	}
	nVars := 3 + int(data[0])%8
	var clauses [][]Lit
	var cur []Lit
	for _, b := range data[1:] {
		if b == 0 {
			if len(cur) > 0 {
				clauses = append(clauses, cur)
				cur = nil
			}
			continue
		}
		v := Var(int(b-1) % nVars)
		neg := (int(b-1)/nVars)%2 == 1
		cur = append(cur, MkLit(v, neg))
		if len(clauses) >= 64 {
			break
		}
	}
	if len(cur) > 0 {
		clauses = append(clauses, cur)
	}
	return nVars, clauses
}

// FuzzDifferentialCDCL cross-checks the full arena CDCL core — learning,
// chronological backtracking, reduceDB with arena GC, scheduled
// inprocessing — against the chronological-backtracking DPLL reference
// (DisableLearning), which shares only the propagation engine. Verdicts
// must agree, and every SAT model must actually satisfy the input.
func FuzzDifferentialCDCL(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 3, 4, 0})
	f.Add([]byte{5, 1, 0, 9, 0, 1, 9, 0, 2, 10, 0, 2, 0})
	f.Add([]byte{7, 1, 2, 3, 0, 4, 5, 6, 0, 7, 8, 9, 0, 10, 11, 12, 0})
	f.Add([]byte{3, 1, 0, 4, 0, 2, 0, 5, 0, 3, 0, 6, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		nVars, clauses := decodeCNF(data)
		if nVars == 0 {
			return
		}
		full := newSolverWith(nVars, clauses, aggressiveOpts())
		ref := newSolverWith(nVars, clauses, Options{DisableLearning: true})
		got, want := full.Solve(), ref.Solve()
		if got != want {
			t.Fatalf("verdict mismatch: arena CDCL %v, DPLL reference %v (nVars=%d clauses=%v)",
				got, want, nVars, clauses)
		}
		if got == Sat && !modelSatisfies(full.Model(), clauses) {
			t.Fatalf("arena CDCL model does not satisfy the input (nVars=%d clauses=%v)", nVars, clauses)
		}
	})
}

// TestArenaGCRemapsEverything exercises garbageCollect directly: problem
// clauses must keep their literals, the watch lists must be remapped to
// the relocated crefs, and dead arena segments must be reclaimed.
func TestArenaGCRemapsEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const nVars = 12
	clauses := randomCNF(rng, nVars, 30, 4)
	s := newSolverWith(nVars, clauses, Options{DisableSimp: true})
	if !s.Okay() {
		t.Skip("instance trivially unsat at level 0")
	}
	s.flushWatches() // AddClause defers attachment; this test inspects watches

	// Interleave garbage between live clauses: orphan learnts that are
	// allocated and immediately deleted, so the arena has holes to squeeze.
	for i := 0; i < 20; i++ {
		c := s.ca.alloc([]Lit{PosLit(Var(i % nVars)), NegLit(Var((i + 1) % nVars)), PosLit(Var((i + 2) % nVars))}, true)
		s.ca.delete(c)
	}
	wasted := s.ca.wasted
	if wasted == 0 {
		t.Fatal("setup made no garbage")
	}

	before := make([][]Lit, len(s.clauses))
	for i, c := range s.clauses {
		before[i] = append([]Lit(nil), s.ca.lits(c)...)
	}
	oldLen := len(s.ca.data)

	s.garbageCollect()

	if s.Stats.ArenaGCs != 1 {
		t.Fatalf("ArenaGCs = %d, want 1", s.Stats.ArenaGCs)
	}
	if got := len(s.ca.data); got != oldLen-wasted {
		t.Fatalf("arena still %d words after GC, want %d", got, oldLen-wasted)
	}
	if s.ca.wasted != 0 {
		t.Fatalf("wasted = %d after GC, want 0", s.ca.wasted)
	}
	if len(s.clauses) != len(before) {
		t.Fatalf("GC changed the clause count: %d -> %d", len(before), len(s.clauses))
	}
	for i, c := range s.clauses {
		if s.ca.deleted(c) {
			t.Fatalf("clause %d deleted by GC", i)
		}
		got := s.ca.lits(c)
		if len(got) != len(before[i]) {
			t.Fatalf("clause %d resized: %v -> %v", i, before[i], got)
		}
		for j := range got {
			if got[j] != before[i][j] {
				t.Fatalf("clause %d literals changed: %v -> %v", i, before[i], got)
			}
		}
	}
	// Every attached clause must be watched on its first two literals.
	for i, c := range s.clauses {
		lits := s.ca.lits(c)
		for _, w := range lits[:2] {
			found := false
			for _, ww := range s.watches[w] {
				if ww.clause() == c {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("clause %d (%v) lost its watcher on %v after GC", i, lits, w)
			}
		}
	}
	// And no watcher may point at a stale or deleted cref.
	for idx := range s.watches {
		for _, w := range s.watches[idx] {
			if w.clause() < 0 || int(w.clause()) >= len(s.ca.data) || s.ca.deleted(w.clause()) {
				t.Fatalf("stale watcher cref %d survived GC", w.clause())
			}
		}
	}

	if got, want := s.Solve(), bruteForce(nVars, clauses); (got == Sat) != want {
		t.Fatalf("post-GC verdict %v disagrees with brute force %v", got, want)
	}
}

// TestReduceDBCompactsArena drives a real search with a tiny learnt cap so
// reduceDB runs repeatedly, and checks the verdict stays correct while the
// arena is reclaimed underneath the search.
func TestReduceDBCompactsArena(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 30; round++ {
		nVars := 8 + rng.Intn(6)
		clauses := randomCNF(rng, nVars, 4*nVars, 3)
		s := newSolverWith(nVars, clauses, aggressiveOpts())
		got := s.Solve()
		want := bruteForce(nVars, clauses)
		if (got == Sat) != want {
			t.Fatalf("round %d: verdict %v, brute force %v", round, got, want)
		}
		if got == Sat && !modelSatisfies(s.Model(), clauses) {
			t.Fatalf("round %d: model does not satisfy input", round)
		}
	}
}

// TestInprocessingWithAssumptions solves the same instance repeatedly
// under different assumption sets on one warm solver, with inprocessing on
// every tick — vivification and in-search BVE must respect frozen
// assumption variables and keep incremental verdicts exact.
func TestInprocessingWithAssumptions(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for round := 0; round < 15; round++ {
		nVars := 8 + rng.Intn(4)
		clauses := randomCNF(rng, nVars, 4*nVars, 3)
		s := newSolverWith(nVars, clauses, aggressiveOpts())
		for call := 0; call < 8; call++ {
			a1 := MkLit(Var(rng.Intn(nVars)), rng.Intn(2) == 0)
			a2 := MkLit(Var(rng.Intn(nVars)), rng.Intn(2) == 0)
			got := s.Solve(a1, a2)
			want := bruteForce(nVars, append([][]Lit{{a1}, {a2}}, clauses...))
			if (got == Sat) != want {
				t.Fatalf("round %d call %d: verdict %v under %v,%v; brute force %v",
					round, call, got, a1, a2, want)
			}
			if got == Sat {
				m := s.Model()
				if !modelSatisfies(m, clauses) || m[a1.Var()] == a1.Neg() || m[a2.Var()] == a2.Neg() {
					t.Fatalf("round %d call %d: model violates clauses or assumptions %v,%v",
						round, call, a1, a2)
				}
			}
			if !s.Okay() {
				break // level-0 unsat: the solver is exhausted for good
			}
		}
	}
}
