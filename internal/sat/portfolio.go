package sat

import (
	"context"
	"fmt"
	"sync"
)

// CloneWithOptions builds a fresh solver over the same problem by replaying
// the clause database: every level-0 fact and every live problem clause is
// re-added to a new solver configured with opts. Learnt clauses are not
// copied — each clone rediscovers its own, which is exactly the
// diversification a portfolio wants. The clone shares no state with the
// receiver and is safe to drive from another goroutine.
func (s *Solver) CloneWithOptions(opts Options) *Solver {
	s.cancelUntil(0)
	ns := NewWithOptions(opts)
	for i := 0; i < s.NumVars(); i++ {
		ns.NewVar()
	}
	if s.unsatLevel0 {
		ns.unsatLevel0 = true
		return ns
	}
	// Level-0 trail first: units subsume the simplifications AddClause
	// applied when the originals were added.
	for _, l := range s.trail {
		if !ns.AddClause(l) {
			return ns
		}
	}
	for _, c := range s.clauses {
		if s.ca.deleted(c) {
			continue
		}
		if !ns.AddClause(s.ca.lits(c)...) {
			return ns
		}
	}
	// The clone starts from the receiver's already-simplified database:
	// carry the frozen marks so any later preprocessing in the clone
	// respects the same contract, and inherit the watermark so the clone
	// does not redo the receiver's work. Variables the receiver eliminated
	// simply do not occur in the replayed clauses; the receiver extends
	// the winner's model over them (see SolvePortfolio).
	if s.elim != nil && !opts.DisableSimp {
		for v := 0; v < s.NumVars(); v++ {
			if s.elim.Frozen(int32(v)) {
				ns.Freeze(Var(v))
			}
		}
	}
	if s.simpRan {
		ns.simpRan = true
		ns.simpWatermark = len(ns.clauses)
	}
	return ns
}

// PortfolioConfig names one diversified solver configuration in a portfolio.
type PortfolioConfig struct {
	Name string
	Opts Options
}

// DefaultPortfolio returns n diversified configurations. The first is
// always the default configuration, so a portfolio of size 1 behaves
// exactly like the sequential solver; the rest vary the restart schedule,
// the phase/decision seed, and the learnt-database cap.
func DefaultPortfolio(n int) []PortfolioConfig {
	base := []PortfolioConfig{
		{Name: "default", Opts: Options{}},
		{Name: "luby512-seed1", Opts: Options{RestartBase: 512, PhaseSeed: 0x9e3779b97f4a7c15}},
		{Name: "luby32-seed2", Opts: Options{RestartBase: 32, PhaseSeed: 0xd1b54a32d192ed03}},
		{Name: "lean-seed3", Opts: Options{LearntCap: 2000, PhaseSeed: 0x2545f4914f6cdd1d}},
		{Name: "nophase-seed4", Opts: Options{DisablePhaseSaving: true, PhaseSeed: 0x9e6c63d0876a9a47}},
	}
	if n <= 0 {
		n = 2
	}
	out := make([]PortfolioConfig, 0, n)
	for i := 0; i < n; i++ {
		c := base[i%len(base)]
		if i >= len(base) {
			// Further workers: same shapes, fresh deterministic seeds.
			c.Name = fmt.Sprintf("%s-r%d", c.Name, i/len(base))
			c.Opts.PhaseSeed = splitmix64(c.Opts.PhaseSeed + uint64(i))
			if c.Opts.PhaseSeed == 0 {
				c.Opts.PhaseSeed = 1
			}
		}
		out = append(out, c)
	}
	return out
}

// WorkerStats reports one portfolio worker's outcome for attribution.
type WorkerStats struct {
	Name   string
	Status Status
	Stop   StopReason
	Winner bool
	Stats  Stats
}

// PortfolioResult is the aggregate outcome of a SolvePortfolio call.
type PortfolioResult struct {
	Status Status
	// Winner indexes Workers; -1 when no worker reached a verdict.
	Winner  int
	Workers []WorkerStats
}

// SolvePortfolio races the given configurations over a replayed copy of the
// receiver's clause database, first definitive verdict wins. The losers are
// cancelled through the context machinery and the call does not return
// until every worker has stopped (no goroutine leaks). On Sat the winner's
// model is installed in the receiver, on Unsat the winner's failed
// assumptions, so Model/Value/Core behave exactly as after a sequential
// Solve. The verdict is necessarily the same as a sequential solve's: all
// workers decide the same clause set under the same assumptions.
//
// With nil configs a default 2-way portfolio is used; with exactly one
// config the receiver solves sequentially itself (no clone, no goroutine).
// The receiver's own clause database is never modified beyond the verdict
// installation, so further AddClause/Solve calls continue as usual.
func (s *Solver) SolvePortfolio(ctx context.Context, b Budget, configs []PortfolioConfig, assumps ...Lit) PortfolioResult {
	if len(configs) == 0 {
		configs = DefaultPortfolio(2)
	}
	if len(configs) == 1 {
		st := s.SolveCtx(ctx, b, assumps...)
		w := WorkerStats{Name: configs[0].Name, Status: st, Stop: s.stopReason, Winner: st != Unknown, Stats: s.Stats}
		winner := -1
		if st != Unknown {
			winner = 0
		}
		return PortfolioResult{Status: st, Winner: winner, Workers: []WorkerStats{w}}
	}

	s.stopReason = StopNone
	if s.unsatLevel0 {
		s.conflict = s.conflict[:0]
		ws := make([]WorkerStats, len(configs))
		for i, c := range configs {
			ws[i] = WorkerStats{Name: c.Name, Status: Unsat, Winner: i == 0}
		}
		return PortfolioResult{Status: Unsat, Winner: 0, Workers: ws}
	}

	clones := make([]*Solver, len(configs))
	for i, c := range configs {
		clones[i] = s.CloneWithOptions(c.Opts)
	}

	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	type verdict struct {
		i  int
		st Status
	}
	ch := make(chan verdict, len(clones))
	var wg sync.WaitGroup
	for i := range clones {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ch <- verdict{i, clones[i].SolveCtx(raceCtx, b, assumps...)}
		}(i)
	}

	winner, status := -1, Unknown
	for range clones {
		v := <-ch
		if v.st != Unknown && winner < 0 {
			winner, status = v.i, v.st
			cancel() // first finisher wins; stop the losers
		}
	}
	wg.Wait()

	workers := make([]WorkerStats, len(clones))
	for i, c := range clones {
		workers[i] = WorkerStats{
			Name:   configs[i].Name,
			Status: Unknown,
			Stop:   c.stopReason,
			Winner: i == winner,
			Stats:  c.Stats,
		}
	}
	if winner >= 0 {
		w := clones[winner]
		workers[winner].Status = status
		switch status {
		case Sat:
			s.model = w.Model()
			s.extendModel()
		case Unsat:
			s.conflict = append(s.conflict[:0], w.conflict...)
			if w.unsatLevel0 {
				// The clause set alone is unsatisfiable; that fact is
				// assumption-independent and sound to keep.
				s.unsatLevel0 = true
			}
		}
		s.stopReason = StopNone
	} else {
		// All workers gave up. Report the cause the caller can act on:
		// parent cancellation or deadline first, else the first worker's.
		s.stopReason = workers[0].Stop
		if ctx.Err() != nil {
			s.stopReason = StopCancelled
		}
	}
	return PortfolioResult{Status: status, Winner: winner, Workers: workers}
}
