package sat

// propagate performs unit propagation over all enqueued assignments.
// It returns the conflicting clause, or crefUndef if no conflict arose.
// The hot loop works directly on the arena: the watcher's blocker check
// avoids touching clause memory at all, and a visited clause is one
// contiguous block of int32s.
func (s *Solver) propagate() cref {
	if s.opts.NaivePropagation {
		return s.propagateNaive()
	}
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is true; visit clauses watching ¬p
		s.qhead++
		s.Stats.Propagations++
		falseLit := p.Not()
		ws := s.watches[falseLit]
		out := ws[:0]
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			blocker := w.blocker()
			if s.value(blocker) == lTrue {
				out = append(out, w)
				continue
			}
			c := w.clause()
			if s.ca.deleted(c) {
				continue // purge lazily
			}
			lits := s.ca.lits(c)
			// Ensure the false literal is at position 1.
			if lits[0] == falseLit {
				lits[0], lits[1] = lits[1], lits[0]
			}
			first := lits[0]
			if first != blocker && s.value(first) == lTrue {
				out = append(out, mkWatcher(c, first))
				continue
			}
			// Look for a new literal to watch.
			found := false
			for k := 2; k < len(lits); k++ {
				if s.value(lits[k]) != lFalse {
					lits[1], lits[k] = lits[k], lits[1]
					s.watches[lits[1]] = append(s.watches[lits[1]], mkWatcher(c, first))
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting.
			out = append(out, w)
			if s.value(first) == lFalse {
				// Conflict: copy remaining watchers back and bail out.
				out = append(out, ws[i+1:]...)
				s.watches[falseLit] = out
				s.qhead = len(s.trail)
				return c
			}
			s.uncheckedEnqueue(first, c)
		}
		s.watches[falseLit] = out
	}
	return crefUndef
}

// propagateNaive is the ablation propagation mode: for each newly false
// literal it scans every clause containing it, checking satisfaction and
// unit status by full traversal.
func (s *Solver) propagateNaive() cref {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.Stats.Propagations++
		falseLit := p.Not()
		occ := s.occs[falseLit]
		live := occ[:0]
		for _, c := range occ {
			if s.ca.deleted(c) {
				continue
			}
			live = append(live, c)
			lits := s.ca.lits(c)
			var unit Lit = LitUndef
			nUndef := 0
			sat := false
			for _, l := range lits {
				switch s.value(l) {
				case lTrue:
					sat = true
				case lUndef:
					nUndef++
					unit = l
				}
				if sat {
					break
				}
			}
			if sat {
				continue
			}
			switch nUndef {
			case 0:
				s.occs[falseLit] = append(live, occ[len(live):]...)
				s.qhead = len(s.trail)
				return c
			case 1:
				// Conflict analysis expects the asserting literal of a
				// reason clause at position 0.
				for k, l := range lits {
					if l == unit {
						lits[0], lits[k] = lits[k], lits[0]
						break
					}
				}
				s.uncheckedEnqueue(unit, c)
			}
		}
		s.occs[falseLit] = live
	}
	return crefUndef
}
