package sat

// propagate performs unit propagation over all enqueued assignments.
// It returns the conflicting clause, or nil if no conflict arose.
func (s *Solver) propagate() *clause {
	if s.opts.NaivePropagation {
		return s.propagateNaive()
	}
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is true; visit clauses watching ¬p
		s.qhead++
		s.Stats.Propagations++
		falseLit := p.Not()
		ws := s.watches[falseLit]
		out := ws[:0]
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if w.c.deleted {
				continue // purge lazily
			}
			if s.value(w.blocker) == lTrue {
				out = append(out, w)
				continue
			}
			c := w.c
			// Ensure the false literal is at position 1.
			if c.lits[0] == falseLit {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.value(first) == lTrue {
				out = append(out, watcher{c, first})
				continue
			}
			// Look for a new literal to watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1]] = append(s.watches[c.lits[1]], watcher{c, first})
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting.
			out = append(out, w)
			if s.value(first) == lFalse {
				// Conflict: copy remaining watchers back and bail out.
				out = append(out, ws[i+1:]...)
				s.watches[falseLit] = out
				s.qhead = len(s.trail)
				return c
			}
			s.uncheckedEnqueue(first, c)
		}
		s.watches[falseLit] = out
	}
	return nil
}

// propagateNaive is the ablation propagation mode: for each newly false
// literal it scans every clause containing it, checking satisfaction and
// unit status by full traversal.
func (s *Solver) propagateNaive() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.Stats.Propagations++
		falseLit := p.Not()
		occ := s.occs[falseLit]
		live := occ[:0]
		for _, c := range occ {
			if c.deleted {
				continue
			}
			live = append(live, c)
			var unit Lit = LitUndef
			nUndef := 0
			sat := false
			for _, l := range c.lits {
				switch s.value(l) {
				case lTrue:
					sat = true
				case lUndef:
					nUndef++
					unit = l
				}
				if sat {
					break
				}
			}
			if sat {
				continue
			}
			switch nUndef {
			case 0:
				s.occs[falseLit] = append(live, occ[len(live):]...)
				s.qhead = len(s.trail)
				return c
			case 1:
				// Conflict analysis expects the asserting literal of a
				// reason clause at position 0.
				for k, l := range c.lits {
					if l == unit {
						c.lits[0], c.lits[k] = c.lits[k], c.lits[0]
						break
					}
				}
				s.uncheckedEnqueue(unit, c)
			}
		}
		s.occs[falseLit] = live
	}
	return nil
}
