package sat

import (
	"context"
	"time"
)

// StopReason explains why a Solve/SolveCtx call returned Unknown. It is
// reset at the start of every Solve call, so a value other than StopNone
// always refers to the most recent call.
type StopReason int

const (
	// StopNone: the last call completed (Sat or Unsat).
	StopNone StopReason = iota
	// StopCancelled: the context passed to SolveCtx was cancelled.
	StopCancelled
	// StopDeadline: the budget's wall-clock deadline passed.
	StopDeadline
	// StopConflicts: the conflict cap (Budget.MaxConflicts or the legacy
	// Options.MaxConflicts) was exhausted.
	StopConflicts
	// StopPropagations: the propagation cap was exhausted.
	StopPropagations
)

func (r StopReason) String() string {
	switch r {
	case StopCancelled:
		return "cancelled"
	case StopDeadline:
		return "deadline exceeded"
	case StopConflicts:
		return "conflict budget exhausted"
	case StopPropagations:
		return "propagation budget exhausted"
	default:
		return "none"
	}
}

// Budget bounds the work of one SolveCtx call. The zero value is
// unlimited. Deadline is an absolute wall-clock cutoff; the two caps count
// work attributable to this call only (they are relative, so a Budget can
// be reused across calls on the same solver).
type Budget struct {
	// Deadline is the wall-clock cutoff; the zero time means none.
	Deadline time.Time
	// MaxConflicts, when positive, caps the conflicts of this call.
	MaxConflicts int64
	// MaxPropagations, when positive, caps the propagations of this call.
	MaxPropagations int64
}

// IsZero reports whether the budget imposes no limit at all.
func (b Budget) IsZero() bool {
	return b.Deadline.IsZero() && b.MaxConflicts <= 0 && b.MaxPropagations <= 0
}

// WithTimeout returns a copy of b whose deadline is now+d, unless b
// already carries an earlier deadline.
func (b Budget) WithTimeout(d time.Duration) Budget {
	dl := time.Now().Add(d)
	if b.Deadline.IsZero() || dl.Before(b.Deadline) {
		b.Deadline = dl
	}
	return b
}

// StopReason reports why the most recent Solve call returned Unknown
// (StopNone when it completed with Sat or Unsat).
func (s *Solver) StopReason() StopReason { return s.stopReason }

// SolveCtx is Solve under a cancellation context and a work budget. The
// search loop polls both: on cancellation, deadline expiry, or cap
// exhaustion it abandons the search and returns Unknown, with the cause
// available from StopReason. A context or deadline that is already
// expired at entry yields Unknown immediately (never a stale verdict),
// except when unsatisfiability was already established at level 0, which
// costs nothing to report.
func (s *Solver) SolveCtx(ctx context.Context, b Budget, assumps ...Lit) Status {
	s.ctx = ctx
	s.deadline = b.Deadline
	if b.MaxConflicts > 0 {
		s.conflictCap = s.Stats.Conflicts + b.MaxConflicts
	}
	if b.MaxPropagations > 0 {
		s.propCap = s.Stats.Propagations + b.MaxPropagations
	}
	defer func() {
		s.ctx = nil
		s.deadline = time.Time{}
		s.conflictCap, s.propCap = 0, 0
	}()
	return s.Solve(assumps...)
}

// stopCheck is polled by the search loop. Cap comparisons are plain
// integer tests and run every time; the context and the wall clock are
// only consulted every 64 polls to keep the hot loop cheap.
func (s *Solver) stopCheck() StopReason {
	if s.conflictCap > 0 && s.Stats.Conflicts >= s.conflictCap {
		return StopConflicts
	}
	if s.opts.MaxConflicts > 0 && s.Stats.Conflicts >= s.opts.MaxConflicts {
		return StopConflicts
	}
	if s.propCap > 0 && s.Stats.Propagations >= s.propCap {
		return StopPropagations
	}
	s.pollTick++
	if s.pollTick&63 != 0 {
		return StopNone
	}
	return s.stopNow()
}

// stopNow consults the expensive stop signals: the wall clock first (so a
// deadline-derived context cancellation still reports StopDeadline), then
// the context.
func (s *Solver) stopNow() StopReason {
	if !s.deadline.IsZero() && !time.Now().Before(s.deadline) {
		return StopDeadline
	}
	if s.ctx != nil {
		select {
		case <-s.ctx.Done():
			return StopCancelled
		default:
		}
	}
	return StopNone
}
