package sat

import "math"

// The clause database is a single flat arena of int32 words (struct of
// arrays in the MiniSat/CaDiCaL tradition): every clause is a fixed
// 3-word header — size+flags, LBD, activity — followed by its literals,
// and a clause reference (cref) is the arena offset of its header. The
// layout removes the two heap objects the previous representation paid
// per clause (the struct and its literal slice), keeps propagation
// walking contiguous memory, and leaves the garbage collector nothing to
// scan: the arena is one pointer-free allocation.
//
// Deletion is a header flag; the dead words are reclaimed by
// garbageCollect (solver.go), which compacts live clauses into a fresh
// arena and remaps every outstanding cref through a relocation address
// written into the dead header.

// cref references a clause by its arena offset. crefUndef is the "no
// clause" sentinel used for decisions and level-0 facts.
type cref int32

const crefUndef cref = -1

const (
	claHdrWords = 3 // size+flags word, LBD word, activity word

	claFlagLearnt  = 1
	claFlagDeleted = 2
	claFlagReloced = 4
	claFlagUsed    = 8 // learnt clause used in conflict analysis since the last reduceDB
	claFlagBits    = 4 // size is stored shifted past the flags
	claFlagMask    = 1<<claFlagBits - 1
)

// clauseDB is the arena. The zero value is an empty database.
type clauseDB struct {
	data   []Lit // headers and literals interleaved; Lit is int32
	wasted int   // words held by deleted clauses and shrunk tails
}

// alloc appends a clause and returns its reference. The literals are
// copied; the header starts with LBD 0 and activity 0.
func (db *clauseDB) alloc(lits []Lit, learnt bool) cref {
	c := cref(len(db.data))
	flags := 0
	if learnt {
		flags = claFlagLearnt
	}
	db.data = append(db.data, Lit(len(lits)<<claFlagBits|flags), 0, 0)
	db.data = append(db.data, lits...)
	return c
}

func (db *clauseDB) size(c cref) int    { return int(db.data[c]) >> claFlagBits }
func (db *clauseDB) learnt(c cref) bool { return db.data[c]&claFlagLearnt != 0 }
func (db *clauseDB) deleted(c cref) bool {
	return db.data[c]&claFlagDeleted != 0
}

// lits returns the clause's literal block as a capacity-clamped view into
// the arena. The view is invalidated by alloc (append may move the
// backing array) and by garbageCollect.
func (db *clauseDB) lits(c cref) []Lit {
	n := int(db.data[c]) >> claFlagBits
	lo := int(c) + claHdrWords
	return db.data[lo : lo+n : lo+n]
}

// delete flags the clause dead and accounts its words as wasted. Watch
// lists purge dead references lazily; garbageCollect reclaims the words.
func (db *clauseDB) delete(c cref) {
	if db.data[c]&claFlagDeleted != 0 {
		return
	}
	db.data[c] |= claFlagDeleted
	db.wasted += claHdrWords + db.size(c)
}

// shrink truncates the clause to its first n literals in place (used by
// strengthening passes); the dropped tail becomes wasted words.
func (db *clauseDB) shrink(c cref, n int) {
	old := db.size(c)
	if n >= old {
		return
	}
	db.wasted += old - n
	db.data[c] = Lit(n<<claFlagBits) | db.data[c]&claFlagMask
}

// used/markUsed/clearUsed manage the "touched since the last reduction"
// flag backing the learnt-clause tiers: a mid/local-tier clause that
// served as a conflict antecedent earns one round of reprieve from
// reduceDB (see search.go).
func (db *clauseDB) used(c cref) bool { return db.data[c]&claFlagUsed != 0 }
func (db *clauseDB) markUsed(c cref)  { db.data[c] |= claFlagUsed }
func (db *clauseDB) clearUsed(c cref) { db.data[c] &^= claFlagUsed }

func (db *clauseDB) lbd(c cref) int32       { return int32(db.data[c+1]) }
func (db *clauseDB) setLBD(c cref, l int32) { db.data[c+1] = Lit(l) }

func (db *clauseDB) act(c cref) float32 {
	return math.Float32frombits(uint32(db.data[c+2]))
}
func (db *clauseDB) setAct(c cref, a float32) {
	db.data[c+2] = Lit(math.Float32bits(a))
}

// reloced/relocTarget read the forwarding address garbageCollect leaves
// in a moved clause's header (the LBD word is reused for the target).
func (db *clauseDB) reloced(c cref) bool     { return db.data[c]&claFlagReloced != 0 }
func (db *clauseDB) relocTarget(c cref) cref { return cref(db.data[c+1]) }

// setReloced marks c moved to target, clobbering the old header.
func (db *clauseDB) setReloced(c, target cref) {
	db.data[c] |= claFlagReloced
	db.data[c+1] = Lit(target)
}

// bytes reports the arena's current backing size.
func (db *clauseDB) bytes() int64 { return int64(cap(db.data)) * 4 }

// watcher pairs a watching clause with a "blocker" literal: if the
// blocker is already true the clause is satisfied and need not be
// touched, sparing the cache miss on the clause itself. The pair is
// packed into one 64-bit word — cref in the high half, blocker literal
// in the low half — so a watch-list scan is a single-word load per entry
// and watch lists are pointer-free flat memory.
type watcher uint64

func mkWatcher(c cref, blocker Lit) watcher {
	return watcher(uint64(uint32(c))<<32 | uint64(uint32(blocker)))
}

func (w watcher) clause() cref { return cref(int32(uint32(w >> 32))) }
func (w watcher) blocker() Lit { return Lit(int32(uint32(w))) }
