package sat

// clause is a disjunction of literals. The first two literals are the
// watched pair (except in naive-propagation mode, where watches are unused).
type clause struct {
	lits     []Lit
	activity float64
	lbd      int32
	learnt   bool
	deleted  bool
}

func (c *clause) size() int { return len(c.lits) }

// watcher pairs a watching clause with a "blocker" literal: if the blocker
// is already true the clause is satisfied and need not be inspected.
type watcher struct {
	c       *clause
	blocker Lit
}
