package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteForce reports satisfiability of a CNF over nVars variables by
// exhaustive enumeration. Clauses use the package Lit encoding.
func bruteForce(nVars int, clauses [][]Lit) bool {
	for mask := 0; mask < 1<<nVars; mask++ {
		ok := true
		for _, c := range clauses {
			sat := false
			for _, l := range c {
				val := mask>>uint(l.Var())&1 == 1
				if val != l.Neg() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func modelSatisfies(model []bool, clauses [][]Lit) bool {
	for _, c := range clauses {
		sat := false
		for _, l := range c {
			if model[l.Var()] != l.Neg() {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

func newSolverWith(nVars int, clauses [][]Lit, opts Options) *Solver {
	s := NewWithOptions(opts)
	for i := 0; i < nVars; i++ {
		s.NewVar()
	}
	for _, c := range clauses {
		if !s.AddClause(c...) {
			return s
		}
	}
	return s
}

func randomCNF(rng *rand.Rand, nVars, nClauses, maxLen int) [][]Lit {
	clauses := make([][]Lit, nClauses)
	for i := range clauses {
		n := 1 + rng.Intn(maxLen)
		c := make([]Lit, n)
		for j := range c {
			c[j] = MkLit(Var(rng.Intn(nVars)), rng.Intn(2) == 0)
		}
		clauses[i] = c
	}
	return clauses
}

func TestLitEncoding(t *testing.T) {
	l := PosLit(3)
	if l.Var() != 3 || l.Neg() {
		t.Fatalf("PosLit(3) decoded to var=%d neg=%v", l.Var(), l.Neg())
	}
	n := l.Not()
	if n.Var() != 3 || !n.Neg() {
		t.Fatalf("Not() gave var=%d neg=%v", n.Var(), n.Neg())
	}
	if n.Not() != l {
		t.Fatal("double negation is not identity")
	}
	if MkLit(5, true) != NegLit(5) || MkLit(5, false) != PosLit(5) {
		t.Fatal("MkLit disagrees with PosLit/NegLit")
	}
	if PosLit(7).String() != "x7" || NegLit(7).String() != "¬x7" {
		t.Fatalf("unexpected literal strings %q %q", PosLit(7), NegLit(7))
	}
}

func TestEmptyProblemIsSat(t *testing.T) {
	s := New()
	if st := s.Solve(); st != Sat {
		t.Fatalf("empty problem: got %v, want SAT", st)
	}
}

func TestSingleUnit(t *testing.T) {
	s := New()
	v := s.NewVar()
	s.AddClause(PosLit(v))
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v", st)
	}
	if !s.Value(v) {
		t.Fatal("unit clause x not reflected in model")
	}
}

func TestContradictoryUnits(t *testing.T) {
	s := New()
	v := s.NewVar()
	s.AddClause(PosLit(v))
	if ok := s.AddClause(NegLit(v)); ok {
		t.Fatal("adding contradictory unit should report unsat")
	}
	if st := s.Solve(); st != Unsat {
		t.Fatalf("got %v, want UNSAT", st)
	}
	if s.Okay() {
		t.Fatal("Okay() should be false after level-0 contradiction")
	}
}

func TestTautologyIgnored(t *testing.T) {
	s := New()
	v := s.NewVar()
	w := s.NewVar()
	s.AddClause(PosLit(v), NegLit(v))
	s.AddClause(NegLit(w))
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v", st)
	}
	if s.Value(w) {
		t.Fatal("w should be false")
	}
}

func TestDuplicateLiteralsMerged(t *testing.T) {
	s := New()
	v := s.NewVar()
	s.AddClause(PosLit(v), PosLit(v), PosLit(v))
	if st := s.Solve(); st != Sat || !s.Value(v) {
		t.Fatalf("got %v value=%v", st, s.Value(v))
	}
}

func TestSimpleImplicationChain(t *testing.T) {
	// x0 ∧ (¬x0∨x1) ∧ (¬x1∨x2) ∧ … forces all true.
	s := New()
	const n = 50
	for i := 0; i < n; i++ {
		s.NewVar()
	}
	s.AddClause(PosLit(0))
	for i := 0; i < n-1; i++ {
		s.AddClause(NegLit(Var(i)), PosLit(Var(i+1)))
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v", st)
	}
	for i := 0; i < n; i++ {
		if !s.Value(Var(i)) {
			t.Fatalf("x%d should be true", i)
		}
	}
}

// pigeonhole builds the classic unsatisfiable PHP(n+1, n) instance.
func pigeonhole(s *Solver, pigeons, holes int) {
	vars := make([][]Var, pigeons)
	for p := range vars {
		vars[p] = make([]Var, holes)
		for h := range vars[p] {
			vars[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		c := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			c[h] = PosLit(vars[p][h])
		}
		s.AddClause(c...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(NegLit(vars[p1][h]), NegLit(vars[p2][h]))
			}
		}
	}
}

func TestPigeonholeUnsat(t *testing.T) {
	for n := 2; n <= 6; n++ {
		s := New()
		pigeonhole(s, n+1, n)
		if st := s.Solve(); st != Unsat {
			t.Fatalf("PHP(%d,%d): got %v, want UNSAT", n+1, n, st)
		}
	}
}

func TestPigeonholeSat(t *testing.T) {
	s := New()
	pigeonhole(s, 5, 5)
	if st := s.Solve(); st != Sat {
		t.Fatalf("PHP(5,5): got %v, want SAT", st)
	}
}

func TestRandomCNFAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 500; iter++ {
		nVars := 2 + rng.Intn(9)
		clauses := randomCNF(rng, nVars, 1+rng.Intn(30), 4)
		want := bruteForce(nVars, clauses)
		s := newSolverWith(nVars, clauses, Options{})
		got := s.Solve()
		if (got == Sat) != want {
			t.Fatalf("iter %d: solver %v, brute force sat=%v\nclauses=%v", iter, got, want, clauses)
		}
		if got == Sat && !modelSatisfies(s.Model(), clauses) {
			t.Fatalf("iter %d: model does not satisfy formula", iter)
		}
	}
}

func TestRandomCNFAllOptionCombos(t *testing.T) {
	combos := []Options{
		{DisableLearning: true},
		{NaivePropagation: true},
		{DisablePhaseSaving: true},
		{DisableRestarts: true},
		{DisableLearning: true, NaivePropagation: true},
		{NaivePropagation: true, DisableRestarts: true},
	}
	for ci, opts := range combos {
		rng := rand.New(rand.NewSource(int64(100 + ci)))
		for iter := 0; iter < 150; iter++ {
			nVars := 2 + rng.Intn(8)
			clauses := randomCNF(rng, nVars, 1+rng.Intn(25), 4)
			want := bruteForce(nVars, clauses)
			s := newSolverWith(nVars, clauses, opts)
			got := s.Solve()
			if (got == Sat) != want {
				t.Fatalf("opts %+v iter %d: solver %v, brute force sat=%v", opts, iter, got, want)
			}
			if got == Sat && !modelSatisfies(s.Model(), clauses) {
				t.Fatalf("opts %+v iter %d: bad model", opts, iter)
			}
		}
	}
}

func TestQuickModelsSatisfyFormula(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 3 + rng.Intn(10)
		clauses := randomCNF(rng, nVars, 3+rng.Intn(40), 5)
		s := newSolverWith(nVars, clauses, Options{})
		if s.Solve() == Sat {
			return modelSatisfies(s.Model(), clauses)
		}
		return !bruteForce(nVars, clauses)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a), PosLit(b))
	if st := s.Solve(NegLit(a)); st != Sat {
		t.Fatalf("got %v", st)
	}
	if s.Value(a) || !s.Value(b) {
		t.Fatalf("model a=%v b=%v under assumption ¬a", s.Value(a), s.Value(b))
	}
	if st := s.Solve(NegLit(a), NegLit(b)); st != Unsat {
		t.Fatalf("got %v, want UNSAT", st)
	}
	// Solver stays usable afterwards.
	if st := s.Solve(); st != Sat {
		t.Fatalf("after unsat-under-assumptions: got %v", st)
	}
}

func TestAssumptionCore(t *testing.T) {
	s := New()
	x, y, z := s.NewVar(), s.NewVar(), s.NewVar()
	// x → y. Assuming x and ¬y is contradictory; z is irrelevant.
	s.AddClause(NegLit(x), PosLit(y))
	st := s.Solve(PosLit(x), NegLit(y), PosLit(z))
	if st != Unsat {
		t.Fatalf("got %v, want UNSAT", st)
	}
	core := s.Core()
	if len(core) == 0 || len(core) > 2 {
		t.Fatalf("core size %d, want 1..2: %v", len(core), core)
	}
	inCore := map[Lit]bool{}
	for _, l := range core {
		inCore[l] = true
	}
	if inCore[PosLit(z)] {
		t.Fatalf("irrelevant assumption z in core: %v", core)
	}
	// The core itself must be unsatisfiable with the clauses.
	if st := s.Solve(core...); st != Unsat {
		t.Fatalf("core is not unsat: %v", core)
	}
}

func TestCoreIsUnsatQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 3 + rng.Intn(7)
		clauses := randomCNF(rng, nVars, 2+rng.Intn(20), 3)
		s := newSolverWith(nVars, clauses, Options{})
		if !s.Okay() {
			return true
		}
		// Random assumptions over distinct variables.
		var assumps []Lit
		for v := 0; v < nVars; v++ {
			if rng.Intn(2) == 0 {
				assumps = append(assumps, MkLit(Var(v), rng.Intn(2) == 0))
			}
		}
		if s.Solve(assumps...) != Unsat {
			return true
		}
		core := s.Core()
		// Core must be a subset of the assumptions…
		set := map[Lit]bool{}
		for _, a := range assumps {
			set[a] = true
		}
		for _, l := range core {
			if !set[l] {
				return false
			}
		}
		// …and re-solving under just the core must stay UNSAT.
		return s.Solve(core...) == Unsat
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalAddBetweenSolves(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(PosLit(a), PosLit(b))
	if s.Solve() != Sat {
		t.Fatal("phase 1 should be SAT")
	}
	s.AddClause(NegLit(a))
	if s.Solve() != Sat {
		t.Fatal("phase 2 should be SAT")
	}
	if s.Value(a) || !s.Value(b) {
		t.Fatal("phase 2 model wrong")
	}
	s.AddClause(NegLit(b))
	if s.Solve() != Unsat {
		t.Fatal("phase 3 should be UNSAT")
	}
	if s.Solve() != Unsat {
		t.Fatal("UNSAT must be sticky once the empty clause is derived")
	}
}

func TestIncrementalNewVarsBetweenSolves(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(PosLit(a))
	if s.Solve() != Sat {
		t.Fatal("should be SAT")
	}
	b := s.NewVar()
	s.AddClause(NegLit(b))
	if s.Solve() != Sat {
		t.Fatal("should still be SAT")
	}
	if !s.Value(a) || s.Value(b) {
		t.Fatalf("model a=%v b=%v", s.Value(a), s.Value(b))
	}
}

func TestMaxConflictsBudget(t *testing.T) {
	s := NewWithOptions(Options{MaxConflicts: 1})
	pigeonhole(s, 7, 6)
	st := s.Solve()
	if st == Sat {
		t.Fatal("PHP(7,6) cannot be SAT")
	}
	// With a one-conflict budget the solver should normally give up.
	if st != Unknown && st != Unsat {
		t.Fatalf("got %v", st)
	}
}

func TestStatsAccumulate(t *testing.T) {
	s := New()
	pigeonhole(s, 6, 5)
	s.Solve()
	if s.Stats.Conflicts == 0 || s.Stats.Propagations == 0 {
		t.Fatalf("expected nonzero work: %+v", s.Stats)
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(1, int64(i+1)); got != w {
			t.Fatalf("luby(1,%d) = %d, want %d", i+1, got, w)
		}
	}
	if got := luby(100, 3); got != 200 {
		t.Fatalf("luby(100,3) = %d, want 200", got)
	}
}

func TestVarHeapOrdering(t *testing.T) {
	act := []float64{1, 5, 3, 4, 2}
	h := newVarHeap(&act)
	for v := 0; v < 5; v++ {
		h.push(Var(v))
	}
	order := []Var{}
	for !h.empty() {
		order = append(order, h.pop())
	}
	want := []Var{1, 3, 2, 4, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("pop order %v, want %v", order, want)
		}
	}
}

func TestVarHeapUpdate(t *testing.T) {
	act := []float64{1, 2, 3}
	h := newVarHeap(&act)
	h.push(0)
	h.push(1)
	h.push(2)
	act[0] = 10
	h.update(0)
	if got := h.pop(); got != 0 {
		t.Fatalf("after update, pop = %v, want 0", got)
	}
	if h.contains(0) {
		t.Fatal("popped var still reported in heap")
	}
}

func TestUnsatCoreEmptyWhenClausesAloneUnsat(t *testing.T) {
	s := New()
	v := s.NewVar()
	s.AddClause(PosLit(v))
	s.AddClause(NegLit(v))
	if st := s.Solve(PosLit(v)); st != Unsat {
		t.Fatalf("got %v", st)
	}
	if len(s.Core()) != 0 {
		t.Fatalf("core should be empty when clauses alone are unsat, got %v", s.Core())
	}
}

func TestManySolveCallsReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := New()
	const n = 12
	for i := 0; i < n; i++ {
		s.NewVar()
	}
	var clauses [][]Lit
	for round := 0; round < 60; round++ {
		c := make([]Lit, 1+rng.Intn(3))
		for j := range c {
			c[j] = MkLit(Var(rng.Intn(n)), rng.Intn(2) == 0)
		}
		if !s.AddClause(c...) {
			break
		}
		clauses = append(clauses, c)
		got := s.Solve()
		want := bruteForce(n, clauses)
		if (got == Sat) != want {
			t.Fatalf("round %d: got %v want sat=%v", round, got, want)
		}
		if got == Unsat {
			break
		}
	}
}

func BenchmarkSolvePigeonhole(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		pigeonhole(s, 8, 7)
		if s.Solve() != Unsat {
			b.Fatal("expected UNSAT")
		}
	}
}

func BenchmarkSolveRandom3SAT(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	clauses := randomCNF(rng, 60, 240, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := newSolverWith(60, clauses, Options{})
		s.Solve()
	}
}
