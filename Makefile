# Tier-1 verification in one command: `make check`.
GO ?= go

.PHONY: check build vet test race fmt bench

check: fmt build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fmt fails (listing the offending files) when anything is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# bench regenerates the EXPERIMENTS.md measurements.
bench:
	$(GO) test -bench=. -benchmem ./...
