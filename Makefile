# Tier-1 verification in one command: `make check`.
GO ?= go

.PHONY: check build vet test race fmt bench bench-smoke bench-diff smoke

check: fmt build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fmt fails (listing the offending files) when anything is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# bench regenerates the EXPERIMENTS.md measurements and archives them as
# BENCH_<date>.json (benchmark name, iterations, ns/op, allocs/op, and any
# custom metrics). The text output still streams to the terminal.
BENCH_OUT ?= BENCH_$(shell date +%F).json
bench:
	$(GO) test -bench=. -benchmem ./... | tee /dev/stderr | $(GO) run ./cmd/benchjson > $(BENCH_OUT)

# bench-smoke is the CI variant: one iteration per benchmark, just enough
# to catch harness rot and emit a comparable JSON artifact.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -benchmem ./... | $(GO) run ./cmd/benchjson > $(BENCH_OUT)

# bench-diff re-measures the encoding ablation family and gates it
# against the most recent committed BENCH_*.json: any benchmark whose
# post-preprocessing clause count, allocs/op, B/op, or ns/op grew more
# than 25% over the baseline fails the target. The gated measurement runs
# without profiling — SIGPROF overhead inflates ns/op 10-30% on small
# machines, which would bias the time gate — and a second, profiled run
# leaves bench.pprof (CPU) and bench-mem.pprof (front-end allocations)
# for the CI artifact.
BENCH_BASELINE ?= $(lastword $(sort $(wildcard BENCH_*.json)))
bench-diff:
	$(GO) test -run '^$$' -bench '^BenchmarkEncoding' -benchmem . \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson > bench-current.json
	$(GO) run ./cmd/benchdiff -metric solver-clauses -max-regress 0.25 \
		-max-alloc-regress 0.25 -max-bytes-regress 0.25 -max-time-regress 0.25 \
		$(BENCH_BASELINE) bench-current.json
	$(GO) test -run '^$$' -bench '^BenchmarkEncoding' \
		-cpuprofile bench.pprof -memprofile bench-mem.pprof . > /dev/null

# smoke boots a real muppetd over the Fig. 1 testdata, probes /healthz,
# runs one check, and asserts a clean SIGTERM drain.
smoke:
	GO="$(GO)" ./scripts/daemon_smoke.sh
