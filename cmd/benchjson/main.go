// Command benchjson converts `go test -bench` text output (read on stdin)
// into a JSON benchmark record (written to stdout), so CI and the Makefile
// can archive comparable BENCH_<date>.json artifacts without third-party
// tooling. Every metric a benchmark line reports — ns/op, B/op, allocs/op,
// and custom b.ReportMetric units like session-reuses — is captured.
//
// Usage:
//
//	go test -bench=. -benchmem . | go run ./cmd/benchjson > BENCH_$(date +%F).json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark line.
type Result struct {
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Metrics maps unit → value, e.g. "ns/op" → 1189549.
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the archived document. Go version, GOMAXPROCS, and CPU
// count pin the machine shape, so bench trajectories stay comparable
// across hosts.
type Report struct {
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	CPU        string   `json:"cpu,omitempty"`
	Results    []Result `json:"results"`
}

func main() {
	rep := Report{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			rep.CPU = strings.TrimSpace(cpu)
			continue
		}
		if r, ok := parseLine(line); ok {
			rep.Results = append(rep.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine decodes one benchmark result line of the form
//
//	BenchmarkName-8   50   1189549 ns/op   49.00 session-reuses   ...
//
// i.e. a name, an iteration count, then (value, unit) pairs.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{
		// The trailing GOMAXPROCS suffix (-8) is stripped so names stay
		// comparable across machines.
		Name:       trimProcs(fields[0]),
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	if len(r.Metrics) == 0 {
		return Result{}, false
	}
	return r, true
}

// trimProcs removes a trailing -N GOMAXPROCS suffix from a benchmark name.
func trimProcs(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}
