// Command benchdiff compares two benchjson reports (baseline, current) and
// enforces the benchmark regression gates: for every benchmark present in
// both reports, the deterministic size metric (solver-clauses by default),
// allocations per op, bytes per op, and wall time per op may not grow by
// more than their allowed fractions. Size and alloc metrics are exact and gate tightly;
// the time gate has the same default bound but can be widened (or disabled
// with a negative bound) on noisy CI machines. When the current report
// carries the BenchmarkDeltaReconcile cold/delta pair, an absolute gate
// additionally requires delta serving to stay -min-delta-speedup times
// faster than the cold rebuild.
//
// Usage:
//
//	go run ./cmd/benchdiff [-metric solver-clauses] [-max-regress 0.25] \
//	    [-max-alloc-regress 0.25] [-max-bytes-regress 0.25] \
//	    [-max-time-regress 0.25] baseline.json current.json
//
// Exit status 1 means at least one gated metric regressed past its bound.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// Result mirrors cmd/benchjson's per-benchmark record.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report mirrors cmd/benchjson's document shape; fields irrelevant to
// diffing are ignored by the decoder.
type Report struct {
	Date    string   `json:"date"`
	Results []Result `json:"results"`
}

// gate is one metric bound: a fractional growth limit, disabled when the
// bound is negative or the metric is absent from either report.
type gate struct {
	metric string
	bound  float64
}

func main() {
	metric := flag.String("metric", "solver-clauses", "deterministic size metric to gate on")
	maxRegress := flag.Float64("max-regress", 0.25, "maximum allowed fractional growth of the size metric")
	maxAlloc := flag.Float64("max-alloc-regress", 0.25, "maximum allowed fractional growth of allocs/op (negative disables)")
	maxBytes := flag.Float64("max-bytes-regress", 0.25, "maximum allowed fractional growth of B/op (negative disables)")
	maxTime := flag.Float64("max-time-regress", 0.25, "maximum allowed fractional growth of ns/op (negative disables)")
	minDelta := flag.Float64("min-delta-speedup", 10, "minimum cold/delta ns-per-op ratio for the DeltaReconcile pair in the current report (negative disables)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] baseline.json current.json")
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	cur, err := load(flag.Arg(1))
	if err != nil {
		fatal(err)
	}

	baseBy := byName(base)
	curBy := byName(cur)
	names := make([]string, 0, len(baseBy))
	for name := range baseBy {
		if _, ok := curBy[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fatal(fmt.Errorf("no common benchmarks between %s and %s", flag.Arg(0), flag.Arg(1)))
	}

	gates := []gate{
		{*metric, *maxRegress},
		{"allocs/op", *maxAlloc},
		{"B/op", *maxBytes},
		{"ns/op", *maxTime},
	}
	failed := 0
	for _, name := range names {
		b, c := baseBy[name], curBy[name]
		for _, g := range gates {
			bv, bok := b.Metrics[g.metric]
			cv, cok := c.Metrics[g.metric]
			if !bok || !cok || bv <= 0 {
				continue
			}
			growth := cv/bv - 1
			status := "ok"
			switch {
			case g.bound < 0:
				status = "info"
			case growth > g.bound:
				status = "FAIL"
				failed++
			}
			fmt.Printf("%-45s %-14s %12.0f -> %12.0f  (%+.1f%%)  [%s]\n",
				name, g.metric, bv, cv, 100*growth, status)
		}
	}
	// The delta gate is absolute, not differential: the current report's
	// full-vs-delta pair must keep incremental re-reconciliation at least
	// -min-delta-speedup times faster than the cold rebuild. Skipped when
	// the pair is absent (older reports) or the bound is negative.
	cold, cok := curBy["BenchmarkDeltaReconcile/cold"]
	delta, dok := curBy["BenchmarkDeltaReconcile/delta"]
	if *minDelta >= 0 && cok && dok {
		cns, dns := cold.Metrics["ns/op"], delta.Metrics["ns/op"]
		if dns <= 0 {
			fatal(fmt.Errorf("DeltaReconcile/delta has no ns/op metric"))
		}
		speedup := cns / dns
		status := "ok"
		if speedup < *minDelta {
			status = "FAIL"
			failed++
		}
		fmt.Printf("%-45s %-14s %12.1fx (want >= %.0fx)%14s[%s]\n",
			"BenchmarkDeltaReconcile", "cold/delta", speedup, *minDelta, "", status)
	}
	if failed > 0 {
		fmt.Printf("benchdiff: %d gated metric(s) regressed past their bounds\n", failed)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: within bounds on all %d common benchmarks\n", len(names))
}

func load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func byName(rep *Report) map[string]Result {
	m := make(map[string]Result, len(rep.Results))
	for _, r := range rep.Results {
		m[r.Name] = r
	}
	return m
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
