// Command benchdiff compares two benchjson reports (baseline, current) and
// enforces the encoding-size regression gate: for every benchmark present
// in both reports, deterministic size metrics (solver-clauses by default)
// may not grow by more than the allowed fraction. Timing metrics are
// printed for context but never gate — CI machines are too noisy for
// one-iteration wall-clock comparisons, while clause counts are exact.
//
// Usage:
//
//	go run ./cmd/benchdiff [-metric solver-clauses] [-max-regress 0.25] baseline.json current.json
//
// Exit status 1 means at least one gated metric regressed past the bound.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// Result mirrors cmd/benchjson's per-benchmark record.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report mirrors cmd/benchjson's document shape; fields irrelevant to
// diffing are ignored by the decoder.
type Report struct {
	Date    string   `json:"date"`
	Results []Result `json:"results"`
}

func main() {
	metric := flag.String("metric", "solver-clauses", "deterministic size metric to gate on")
	maxRegress := flag.Float64("max-regress", 0.25, "maximum allowed fractional growth of the gated metric")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] baseline.json current.json")
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	cur, err := load(flag.Arg(1))
	if err != nil {
		fatal(err)
	}

	baseBy := byName(base)
	curBy := byName(cur)
	names := make([]string, 0, len(baseBy))
	for name := range baseBy {
		if _, ok := curBy[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fatal(fmt.Errorf("no common benchmarks between %s and %s", flag.Arg(0), flag.Arg(1)))
	}

	failed := 0
	for _, name := range names {
		b, c := baseBy[name], curBy[name]
		bv, bok := b.Metrics[*metric]
		cv, cok := c.Metrics[*metric]
		if bok && cok && bv > 0 {
			growth := cv/bv - 1
			status := "ok"
			if growth > *maxRegress {
				status = "FAIL"
				failed++
			}
			fmt.Printf("%-45s %s %10.0f -> %10.0f  (%+.1f%%)  [%s]\n",
				name, *metric, bv, cv, 100*growth, status)
		}
		if bt, ok := b.Metrics["ns/op"]; ok {
			if ct, ok := c.Metrics["ns/op"]; ok && bt > 0 {
				fmt.Printf("%-45s ns/op    %12.0f -> %12.0f  (%+.1f%%)  [info]\n",
					name, bt, ct, 100*(ct/bt-1))
			}
		}
	}
	if failed > 0 {
		fmt.Printf("benchdiff: %d benchmark(s) regressed %s by more than %.0f%%\n",
			failed, *metric, 100**maxRegress)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %s within %.0f%% of baseline on all %d common benchmarks\n",
		*metric, 100**maxRegress, len(names))
}

func load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func byName(rep *Report) map[string]Result {
	m := make(map[string]Result, len(rep.Results))
	for _, r := range rep.Results {
		m[r.Name] = r
	}
	return m
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
