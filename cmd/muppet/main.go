// Command muppet is the CLI front end for the solver-aided multi-party
// configuration toolkit. It mirrors the paper's workflows:
//
//	muppet check      — local consistency of one party's offer (Alg. 1)
//	muppet envelope   — compute and print E_{A→B} (Alg. 3, Fig. 5)
//	muppet reconcile  — reconcile all offers (Alg. 2)
//	muppet conform    — the conformance workflow (Fig. 7)
//	muppet negotiate  — the negotiation workflow (Fig. 9)
//	muppet diff       — diff two bundle revisions; delta re-reconcile
//	muppet watch      — follow a daemon's watch endpoint
//	muppet eval       — evaluate one flow under concrete configurations
//	muppet bench      — serve repeated queries, optionally in parallel
//	muppet version    — report the build's version and VCS revision
//
// System structure and current configurations come from YAML files (K8s
// Services and NetworkPolicies, Istio AuthorizationPolicies); goals come
// from CSV tables (see package goals for the format).
//
// The workflow commands solve locally by default; with -addr they route
// the same request through a running muppetd daemon instead, and print
// its (byte-identical) verdict. Solving commands accept -timeout and
// -max-conflicts budgets, a -portfolio width racing diversified solver
// configurations per solve, and a -v flag printing session-reuse and
// portfolio worker statistics; they honour SIGINT/SIGTERM; an interrupted
// solve reports INDETERMINATE with the stop reason rather than a
// fabricated verdict. Exit codes are distinct:
//
//	0 — satisfiable / workflow succeeded
//	1 — unsatisfiable / workflow failed with blame
//	2 — usage error
//	3 — indeterminate (budget exhausted or interrupted)
//	4 — internal or input error
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"muppet"
	"muppet/internal/buildinfo"
	"muppet/internal/feder"
	"muppet/internal/server"
	"muppet/internal/target"
	"muppet/internal/tenant"
)

// Exit codes, shared with the daemon's verdict codes so scripted callers
// (and the paper's Fig. 7/9 driver loops) branch identically against
// either front end.
const (
	exitSat           = server.CodeSat
	exitUnsat         = server.CodeUnsat
	exitUsage         = server.CodeUsage
	exitIndeterminate = server.CodeIndeterminate
	exitInternal      = server.CodeInternal
)

// statusErr carries an exit code through the command's error return when
// the verdict has already been printed and no further message is needed.
type statusErr int

func (e statusErr) Error() string { return "exit status " + strconv.Itoa(int(e)) }

func main() {
	os.Exit(run(os.Args[1:]))
}

// run dispatches argv with SIGINT/SIGTERM wired to context cancellation,
// so an operator's ^C interrupts the solver and yields an INDETERMINATE
// verdict instead of killing the process mid-solve.
func run(argv []string) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return runCtx(ctx, argv)
}

// runCtx dispatches argv under ctx. It is the testable seam for the
// signal→cancel wiring, and the recover boundary: the relational
// evaluator signals malformed internal state by panicking, and a serving
// front end must convert that into a clean error, not a crash.
func runCtx(ctx context.Context, argv []string) (code int) {
	defer func() {
		if p := recover(); p != nil {
			fmt.Fprintf(os.Stderr, "muppet: internal error: %v\n", p)
			code = exitInternal
		}
	}()
	if len(argv) < 1 {
		usage()
		return exitUsage
	}
	if err := dispatchFn(ctx, argv[0], argv[1:]); err != nil {
		var se statusErr
		if errors.As(err, &se) {
			return int(se)
		}
		fmt.Fprintln(os.Stderr, "muppet:", err)
		if errors.Is(err, server.ErrUsage) {
			return exitUsage
		}
		return exitInternal
	}
	return exitSat
}

// dispatchFn is a seam for tests to exercise the recover boundary.
var dispatchFn = dispatch

func dispatch(ctx context.Context, cmd string, args []string) error {
	switch cmd {
	case "check":
		return runCheck(ctx, args)
	case "envelope":
		return runEnvelope(ctx, args)
	case "reconcile":
		return runReconcile(ctx, args)
	case "conform":
		return runConform(ctx, args)
	case "negotiate":
		return runNegotiate(ctx, args)
	case "diff":
		return runDiff(ctx, args)
	case "watch":
		return runWatch(ctx, args)
	case "eval":
		return runEval(ctx, args)
	case "bench":
		return runBench(ctx, args)
	case "transcript":
		return runTranscript(ctx, args)
	case "version":
		fmt.Println("muppet", buildinfo.Version())
		return nil
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		fmt.Fprintf(os.Stderr, "muppet: unknown command %q\n", cmd)
		usage()
		return statusErr(exitUsage)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: muppet <command> [flags]

commands:
  check      local consistency of one party's offer (Alg. 1)
  envelope   compute an envelope between parties (Alg. 3)
  reconcile  reconcile all parties' offers (Alg. 2)
  conform    run the conformance workflow (Fig. 7)
  negotiate  run the negotiation workflow (Fig. 9)
  diff       compare two bundle revisions; -op serves the new revision
             through the old one's warm sessions (delta re-reconcile)
  watch      follow a daemon's watch endpoint, printing each revision's
             verdict as goals/configs change
  eval       evaluate a single flow under the loaded configurations
  bench      serve repeated queries from warm sessions, optionally parallel
  transcript verify an HMAC-chained federated negotiation transcript
  version    report the build's version and VCS revision

common flags:
  -files        comma-separated YAML files (Services, NetworkPolicies,
                AuthorizationPolicies)
  -k8s-goals    CSV file with K8s goals (port,perm,selector)
  -istio-goals  CSV file with Istio goals (src,dst,srcPort,dstPort[,perm])
  -k8s-offer    fixed|soft|holes (default fixed)
  -istio-offer  fixed|soft|holes (default soft)
  -ports        comma-separated extra ports for the inventory

check/envelope/reconcile/conform/negotiate also accept:
  -addr           route the request through a running muppetd at host:port
                  instead of solving locally (budgets travel as headers;
                  -portfolio/-strategy/-v are daemon-side and rejected)
  -tenant         tenant to address on the daemon (requires -addr;
                  default: the daemon's default tenant)
  -retries        retries for retryable daemon failures in -addr mode:
                  429, 503, connection errors (default 2)

negotiate also accepts (federated mode):
  -federated        coordinate the negotiation across muppetd peers, each
                    holding only its own party's bundle
  -peers            name=url pairs, one per party:
                    k8s=http://host:port,istio=http://host:port
  -transcript       append the HMAC-chained negotiation transcript here
  -transcript-key   shared HMAC key for -transcript (and transcript verify)

check/envelope/reconcile/conform/negotiate/bench also accept:
  -timeout        wall-clock budget for the whole command (e.g. 500ms; 0 = none)
  -max-conflicts  solver conflict budget (0 = none)
  -portfolio      race N diversified solver configurations per solve (0/1 = off)
  -encoding       encoding pipeline: full (default) | legacy | comma list of
                  no-polarity,no-sweep,no-simp
  -v              print session-reuse, encoding, and portfolio statistics

diff accepts:
  -before/-after  the two revisions: tenant.yaml manifests or their dirs
  -op             also serve this op for -after via warm rebase, exiting
                  with its verdict code (without -op: exit 0 unchanged,
                  1 changed)
  -party/-provider parameterize check/conform

watch accepts:
  -addr           muppetd to follow (required); -tenant picks the bundle
  -op             op to watch (default reconcile); -party/-provider as above
  -events         stop after N events (0 = until terminal or ^C)
  -raw            suppress the // delta commentary lines

bench also accepts:
  -n                number of queries to serve (default 64)
  -parallel         worker goroutines (0 = GOMAXPROCS; default 1)
  -kind             query kind: consistency|envelope|reconcile|mixed|tenants|delta
  -tenants          fleet size for -kind tenants (default 8; -files unused)
  -cache-budget-mb  idle warm-cache budget for -kind tenants, MiB (0 = unlimited)

reconcile/conform/negotiate also accept:
  -strategy     minimal-edit distance search: auto|linear|binary

exit codes: 0 sat/success, 1 unsat/failure, 2 usage,
            3 indeterminate (budget/interrupt), 4 internal error
`)
}

// inputs gathers the flags shared by all workflow commands; it is the
// CLI face of server.Config.
type inputs struct {
	cfg server.Config
}

func (in *inputs) register(fs *flag.FlagSet) {
	fs.StringVar(&in.cfg.Files, "files", "", "comma-separated YAML files")
	fs.StringVar(&in.cfg.K8sGoals, "k8s-goals", "", "K8s goals CSV")
	fs.StringVar(&in.cfg.IstioGoals, "istio-goals", "", "Istio goals CSV")
	fs.StringVar(&in.cfg.K8sOffer, "k8s-offer", "fixed", "K8s offer: fixed|soft|holes")
	fs.StringVar(&in.cfg.IstioOffer, "istio-offer", "soft", "Istio offer: fixed|soft|holes")
	fs.StringVar(&in.cfg.Ports, "ports", "", "extra ports, comma-separated")
}

func (in *inputs) load() (*server.State, error) { return server.Load(in.cfg) }

// limits gathers the solve-budget and solver-configuration flags shared by
// the solving commands.
type limits struct {
	timeout      time.Duration
	maxConflicts int64
	portfolio    int
	encoding     string
	verbose      bool
}

func (l *limits) register(fs *flag.FlagSet) {
	fs.DurationVar(&l.timeout, "timeout", 0,
		"wall-clock budget for the whole command (0 = none)")
	fs.Int64Var(&l.maxConflicts, "max-conflicts", 0,
		"solver conflict budget (0 = none)")
	fs.IntVar(&l.portfolio, "portfolio", 0,
		"race N diversified solver configurations per solve (0/1 = sequential)")
	fs.StringVar(&l.encoding, "encoding", "full",
		"encoding pipeline: full|legacy or comma list of no-polarity,no-sweep,no-simp")
	fs.BoolVar(&l.verbose, "v", false,
		"print session-reuse and portfolio worker statistics")
}

// parseEncoding maps the -encoding flag to an encoding configuration.
func parseEncoding(s string) (muppet.Encoding, error) {
	switch s {
	case "", "full":
		return muppet.Encoding{}, nil
	case "legacy":
		return muppet.Encoding{NoPolarity: true, NoSweep: true, NoPreprocess: true}, nil
	}
	var e muppet.Encoding
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "no-polarity":
			e.NoPolarity = true
		case "no-sweep":
			e.NoSweep = true
		case "no-simp":
			e.NoPreprocess = true
		default:
			return e, fmt.Errorf("bad -encoding %q (want full|legacy or no-polarity,no-sweep,no-simp)", s)
		}
	}
	return e, nil
}

// apply derives the solving context and budget. The deadline clock starts
// here — before input loading — so -timeout bounds the whole command, not
// just the solver. The returned cancel must be deferred.
func (l *limits) apply(ctx context.Context) (context.Context, context.CancelFunc, muppet.Budget, error) {
	muppet.SetPortfolioWorkers(l.portfolio)
	enc, err := parseEncoding(l.encoding)
	if err != nil {
		return ctx, func() {}, muppet.Budget{}, err
	}
	muppet.SetEncoding(enc)
	b := muppet.Budget{MaxConflicts: l.maxConflicts}
	cancel := context.CancelFunc(func() {})
	if l.timeout > 0 {
		b.Deadline = time.Now().Add(l.timeout)
		ctx, cancel = context.WithDeadline(ctx, b.Deadline)
	}
	return ctx, cancel, b, nil
}

// daemonFlags gathers the daemon-routing flags shared by the workflow
// commands: where the daemon is, which of its tenants to address, and how
// persistently to retry retryable failures.
type daemonFlags struct {
	addr     string
	tenantID string
	retries  int
}

// registerAddr adds the daemon-routing flags.
func registerAddr(fs *flag.FlagSet) *daemonFlags {
	d := &daemonFlags{}
	fs.StringVar(&d.addr, "addr", "",
		"route the request through a running muppetd at host:port instead of solving locally")
	fs.StringVar(&d.tenantID, "tenant", "",
		"tenant to address on the daemon (requires -addr; default: the daemon's default tenant)")
	fs.IntVar(&d.retries, "retries", 2,
		"retries for retryable daemon failures (429, 503, connection errors; -addr mode)")
	return d
}

// execute runs one mediation request: locally through server.Exec (the
// same renderer the daemon uses, so both modes produce byte-identical
// verdicts), or against a running daemon when addr is set. strategy is ""
// for commands without a -strategy flag.
func execute(ctx context.Context, in *inputs, lim *limits, strategy string, d *daemonFlags, req server.Request) error {
	addr, tenantID := d.addr, d.tenantID
	if addr != "" {
		return clientExecute(ctx, addr, tenantID, lim, strategy, d.retries, req)
	}
	if tenantID != "" {
		return fmt.Errorf("-tenant selects a daemon bundle and needs -addr; local solves take their bundle from -files")
	}
	if strategy != "" {
		if err := applyStrategy(strategy); err != nil {
			return err
		}
	}
	ctx, cancel, budget, err := lim.apply(ctx)
	if err != nil {
		return err
	}
	defer cancel()
	st, err := in.load()
	if err != nil {
		return err
	}
	cache := muppet.NewSolveCache()
	resp, err := server.Exec(ctx, st, cache, req, budget)
	if err != nil {
		return err
	}
	if lim.verbose {
		printReuse(cache.Stats(), cache.Workers())
	}
	fmt.Print(resp.Output)
	if resp.Code != exitSat {
		return statusErr(resp.Code)
	}
	return nil
}

// printReuse reports -v statistics: how much grounding the solve cache
// avoided and, when a portfolio raced, what each worker did.
func printReuse(st muppet.ReuseStats, workers []muppet.WorkerStats) {
	t := st.Translation
	fmt.Printf("// sessions: %d built, %d reused; translation cache: %d pointer hits, %d structural hits, %d misses\n",
		st.Sessions, st.Reuses, t.PointerHits, t.StructHits, t.Misses)
	e := st.Encoding
	fmt.Printf("// encoding: %d circuit nodes, %d vars, %d clauses; preprocessing eliminated %d vars, removed %d clauses\n",
		e.CircuitNodes, e.SolverVars, e.SolverClauses, e.VarsEliminated, e.ClausesRemoved)
	for _, w := range workers {
		mark := " "
		if w.Winner {
			mark = "*"
		}
		fmt.Printf("// %s worker %-12s %-7v conflicts=%d restarts=%d decisions=%d\n",
			mark, w.Name, w.Status, w.Stats.Conflicts, w.Stats.Restarts, w.Stats.Decisions)
	}
}

// registerStrategy adds the -strategy flag shared by the commands that
// run minimal-edit search (reconcile, conform, negotiate).
func registerStrategy(fs *flag.FlagSet) *string {
	return fs.String("strategy", "auto", "minimal-edit distance search: auto|linear|binary")
}

// applyStrategy sets the target package's default search strategy, which
// workspace minimisation (Options zero value) follows.
func applyStrategy(name string) error {
	st, ok := target.ParseStrategy(name)
	if !ok {
		return fmt.Errorf("bad -strategy %q (want auto|linear|binary)", name)
	}
	target.SetDefaultStrategy(st)
	return nil
}

func runCheck(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	var in inputs
	var lim limits
	in.register(fs)
	lim.register(fs)
	d := registerAddr(fs)
	party := fs.String("party", "k8s", "party to check: k8s|istio")
	fs.Parse(args)
	return execute(ctx, &in, &lim, "", d, server.Request{Op: "check", Party: *party})
}

func runEnvelope(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("envelope", flag.ExitOnError)
	var in inputs
	var lim limits
	in.register(fs)
	lim.register(fs)
	d := registerAddr(fs)
	from := fs.String("from", "k8s", "sender party")
	to := fs.String("to", "istio", "recipient party")
	leakage := fs.Bool("leakage", false, "also print the leaked atoms")
	english := fs.Bool("english", false, "also print a prose rendering")
	fs.Parse(args)
	return execute(ctx, &in, &lim, "", d, server.Request{
		Op: "envelope", From: *from, To: *to, Leakage: *leakage, English: *english,
	})
}

func runReconcile(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("reconcile", flag.ExitOnError)
	var in inputs
	var lim limits
	in.register(fs)
	lim.register(fs)
	d := registerAddr(fs)
	strategy := registerStrategy(fs)
	fs.Parse(args)
	return execute(ctx, &in, &lim, *strategy, d, server.Request{Op: "reconcile"})
}

func runConform(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("conform", flag.ExitOnError)
	var in inputs
	var lim limits
	in.register(fs)
	lim.register(fs)
	d := registerAddr(fs)
	provider := fs.String("provider", "k8s", "inflexible provider party")
	strategy := registerStrategy(fs)
	fs.Parse(args)
	return execute(ctx, &in, &lim, *strategy, d, server.Request{Op: "conform", Provider: *provider})
}

func runNegotiate(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("negotiate", flag.ExitOnError)
	var in inputs
	var lim limits
	in.register(fs)
	lim.register(fs)
	d := registerAddr(fs)
	rounds := fs.Int("rounds", 0, "max revision rounds (0 = default)")
	strategy := registerStrategy(fs)
	federated := fs.Bool("federated", false,
		"negotiate across muppetd peers named by -peers, acting as the coordinator")
	peers := fs.String("peers", "",
		"federated peer list, name=url pairs: k8s=http://host:port,istio=http://host:port")
	transcriptPath := fs.String("transcript", "", "append the HMAC-chained negotiation transcript to this file")
	transcriptKey := fs.String("transcript-key", "", "shared HMAC key for -transcript")
	fs.Parse(args)
	req := server.Request{Op: "negotiate", Rounds: *rounds}
	if *federated || *peers != "" {
		if *peers == "" {
			return fmt.Errorf("%w: -federated needs -peers (name=url,...)", server.ErrUsage)
		}
		if d.addr != "" {
			// A daemon coordinator is addressed by putting peers in the
			// request body; the CLI's -federated mode coordinates locally.
			req.Peers = *peers
			return execute(ctx, &in, &lim, *strategy, d, req)
		}
		req.Peers = *peers
		return runFederated(ctx, &in, &lim, *strategy, d.retries, *transcriptPath, *transcriptKey, req)
	}
	if *transcriptPath != "" {
		return fmt.Errorf("%w: -transcript records federated negotiations; add -federated -peers", server.ErrUsage)
	}
	return execute(ctx, &in, &lim, *strategy, d, req)
}

// runFederated coordinates a federated negotiation from the CLI: the
// local bundle provides the replicas, -peers names the remote mediators,
// and the retry/breaker/transcript machinery reports into -v output.
func runFederated(ctx context.Context, in *inputs, lim *limits, strategy string, retries int, transcriptPath, transcriptKey string, req server.Request) error {
	if strategy != "" {
		if err := applyStrategy(strategy); err != nil {
			return err
		}
	}
	ctx, cancel, budget, err := lim.apply(ctx)
	if err != nil {
		return err
	}
	defer cancel()
	st, err := in.load()
	if err != nil {
		return err
	}
	fopts := &server.FedOptions{Retries: retries}
	if retries == 0 {
		fopts.Retries = -1 // the flag's 0 means none; feder's 0 means default
	}
	var fedRounds int
	fedRetries := make(map[string]int64)
	fedBreakers := make(map[string]string)
	fopts.OnRound = func() { fedRounds++ }
	fopts.OnRetry = func(peer string) { fedRetries[peer]++ }
	fopts.OnBreaker = func(peer string, bs feder.BreakerState) { fedBreakers[peer] = bs.String() }
	if transcriptPath != "" {
		f, err := os.OpenFile(transcriptPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		fopts.Transcript = feder.NewTranscriptWriter(f, []byte(transcriptKey))
	}
	cache := muppet.NewSolveCache()
	resp, err := server.ExecFed(ctx, st, cache, req, budget, fopts)
	if err != nil {
		return err
	}
	if lim.verbose {
		printReuse(cache.Stats(), cache.Workers())
		printFed(fedRounds, fedRetries, fedBreakers)
	}
	fmt.Print(resp.Output)
	if resp.Code != exitSat {
		return statusErr(resp.Code)
	}
	return nil
}

// printFed reports the -v federation statistics: rounds driven, per-peer
// retry attempts, and where each peer's circuit breaker ended up.
func printFed(rounds int, retries map[string]int64, breakers map[string]string) {
	var parts []string
	for _, peer := range sortedPeerNames(retries) {
		parts = append(parts, fmt.Sprintf("%s=%d", peer, retries[peer]))
	}
	fmt.Printf("// fed: %d rounds; retries: %s\n", rounds, strings.Join(parts, " "))
	parts = parts[:0]
	for _, peer := range sortedPeerNames(breakers) {
		parts = append(parts, fmt.Sprintf("%s=%s", peer, breakers[peer]))
	}
	fmt.Printf("// fed: breakers: %s\n", strings.Join(parts, " "))
}

func sortedPeerNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// runTranscript serves the transcript verbs: `muppet transcript verify
// -key K FILE` re-walks an HMAC-chained negotiation transcript and
// reports whether the chain is intact.
func runTranscript(_ context.Context, args []string) error {
	if len(args) < 1 || args[0] != "verify" {
		return fmt.Errorf("%w: usage: muppet transcript verify -key KEY FILE", server.ErrUsage)
	}
	fs := flag.NewFlagSet("transcript verify", flag.ExitOnError)
	key := fs.String("key", "", "shared HMAC key the transcript was written with")
	fs.Parse(args[1:])
	if fs.NArg() != 1 {
		return fmt.Errorf("%w: usage: muppet transcript verify -key KEY FILE", server.ErrUsage)
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	n, err := feder.VerifyTranscript(f, []byte(*key))
	if err != nil {
		fmt.Printf("INVALID after %d entries: %v\n", n, err)
		return statusErr(exitUnsat)
	}
	fmt.Printf("OK: %d entries verified\n", n)
	return nil
}

// runBench serves -n independent queries across -parallel workers sharing
// one System, each worker holding its own parties and SolveCache — the
// concurrent-deployment smoke test (and the CLI face of muppet.FanOut).
func runBench(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	var in inputs
	var lim limits
	in.register(fs)
	lim.register(fs)
	n := fs.Int("n", 64, "number of queries to serve")
	parallel := fs.Int("parallel", 1, "worker goroutines (0 = GOMAXPROCS)")
	kind := fs.String("kind", "mixed", "query kind: consistency|envelope|reconcile|mixed|tenants|delta")
	fleet := fs.Int("tenants", 8, "fleet size for -kind tenants")
	budgetMB := fs.Int("cache-budget-mb", 0, "idle warm-cache budget for -kind tenants, MiB (0 = unlimited)")
	fs.Parse(args)
	ctx, cancel, budget, err := lim.apply(ctx)
	if err != nil {
		return err
	}
	defer cancel()
	if *kind == "tenants" {
		return benchTenants(ctx, &lim, budget, *n, *parallel, *fleet, *budgetMB)
	}
	if *kind == "delta" {
		return benchDelta(ctx, &lim, budget, *n)
	}
	st, err := in.load()
	if err != nil {
		return err
	}
	kinds := []string{"consistency", "envelope", "reconcile"}
	switch *kind {
	case "mixed":
	case "consistency", "envelope", "reconcile":
		kinds = []string{*kind}
	default:
		return fmt.Errorf("bad -kind %q (want consistency|envelope|reconcile|mixed|tenants|delta)", *kind)
	}
	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > *n {
		workers = *n
	}
	caches := make([]*muppet.SolveCache, workers)
	var served atomic.Int64
	start := time.Now()
	// Each FanOut task is one worker serving its share of the queries from
	// its own warm sessions; only the System is shared.
	err = muppet.FanOut(ctx, workers, workers, func(ctx context.Context, w int) error {
		k8sParty, istioParty, err := st.FreshParties()
		if err != nil {
			return err
		}
		cache := muppet.NewSolveCache()
		caches[w] = cache
		for q := w; q < *n; q += workers {
			switch kinds[q%len(kinds)] {
			case "consistency":
				res := cache.LocalConsistencyCtx(ctx, st.Sys, k8sParty, []*muppet.Party{istioParty}, budget)
				if res.Indeterminate {
					return fmt.Errorf("query %d indeterminate (%s)", q, res.Stop)
				}
			case "envelope":
				if _, err := muppet.ComputeEnvelopeCtx(ctx, st.Sys, istioParty, []*muppet.Party{k8sParty}); err != nil {
					return err
				}
			case "reconcile":
				res := cache.ReconcileCtx(ctx, st.Sys, []*muppet.Party{k8sParty, istioParty}, budget)
				if res.Indeterminate {
					return fmt.Errorf("query %d indeterminate (%s)", q, res.Stop)
				}
			}
			served.Add(1)
		}
		return nil
	})
	elapsed := time.Since(start)
	if lim.verbose {
		var agg muppet.ReuseStats
		for _, c := range caches {
			if c == nil {
				continue
			}
			agg.Add(c.Stats())
		}
		printReuse(agg, nil)
	}
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			fmt.Printf("INDETERMINATE: served %d/%d queries in %v\n", served.Load(), *n, elapsed.Round(time.Millisecond))
			return statusErr(exitIndeterminate)
		}
		return err
	}
	qps := float64(served.Load()) / elapsed.Seconds()
	fmt.Printf("served %d queries (%s) with %d workers in %v (%.1f queries/s)\n",
		served.Load(), *kind, workers, elapsed.Round(time.Millisecond), qps)
	return nil
}

// benchDelta is the -kind delta mode: the full-vs-delta pair at the
// services=12 generated scenario. One revision edit (the first port ban
// flipped to an allow) arrives n times, alternating directions; the
// cold leg rebuilds everything per query, the delta leg serves each
// from the previous revision's warm sessions via snapshot → diff →
// rebase. Prints both rates and the speedup — the watch-mode win.
func benchDelta(ctx context.Context, lim *limits, budget muppet.Budget, n int) error {
	sc := muppet.GenerateScenario(muppet.ScenarioParams{
		Services:        12,
		PortsPerService: 2,
		Flows:           12,
		BannedPorts:     2,
		Seed:            42,
	})
	sys, err := sc.System()
	if err != nil {
		return err
	}
	mk := func(kg []muppet.K8sGoal) ([]*muppet.Party, error) {
		k8s, _, err := muppet.NewK8sParty(sys, sc.K8sCurrent, muppet.AllSoft(), kg)
		if err != nil {
			return nil, err
		}
		istio, _, err := muppet.NewIstioParty(sys, sc.IstioCurrent, muppet.AllSoft(), sc.IstioRelaxed)
		if err != nil {
			return nil, err
		}
		return []*muppet.Party{k8s, istio}, nil
	}
	goalsB := append([]muppet.K8sGoal(nil), sc.K8sGoals...)
	goalsB[0].Allow = !goalsB[0].Allow
	partiesA, err := mk(sc.K8sGoals)
	if err != nil {
		return err
	}
	partiesB, err := mk(goalsB)
	if err != nil {
		return err
	}
	revs := [2][]*muppet.Party{partiesA, partiesB}

	coldN := n
	if coldN > 8 {
		coldN = 8 // cold solves are slow; a few suffice for the rate
	}
	coldStart := time.Now()
	for q := 0; q < coldN; q++ {
		if res := muppet.Reconcile(sys, revs[q%2]); !res.OK {
			return fmt.Errorf("cold query %d: scenario must reconcile", q)
		}
	}
	coldPer := time.Since(coldStart) / time.Duration(coldN)

	cache := muppet.NewSolveCache()
	prev := muppet.Snapshot(sys, partiesA)
	if res := cache.ReconcileCtx(ctx, sys, partiesA, budget); !res.OK {
		return fmt.Errorf("warmup: scenario must reconcile")
	}
	var last muppet.DeltaStats
	deltaStart := time.Now()
	for q := 0; q < n; q++ {
		ps := revs[(q+1)%2]
		next := muppet.Snapshot(sys, ps)
		plan := muppet.CompareRevisions(prev, next)
		if !plan.Compatible {
			return fmt.Errorf("delta query %d: revisions must be compatible: %s", q, plan.Reason)
		}
		var res *muppet.Result
		last = cache.Rebase(plan, func() {
			res = cache.ReconcileCtx(ctx, sys, ps, budget)
		})
		if res.Indeterminate {
			return fmt.Errorf("delta query %d indeterminate (%s)", q, res.Stop)
		}
		if !res.OK {
			return fmt.Errorf("delta query %d: scenario must reconcile", q)
		}
		prev = next
	}
	deltaPer := time.Since(deltaStart) / time.Duration(n)
	if lim.verbose {
		printReuse(cache.Stats(), cache.Workers())
	}
	if last.Cold {
		return fmt.Errorf("delta serving went cold: %s", last.Reason)
	}
	fmt.Printf("// delta: groups: %d kept, %d re-asserted; goals: %d kept, +%d −%d; vars restored: %d\n",
		last.GroupsKept, last.GroupsReasserted, last.GoalsKept, last.GoalsAdded, last.GoalsRemoved, last.Restored)
	fmt.Printf("cold %v/op (%d ops), delta %v/op (%d ops): %.1fx speedup\n",
		coldPer.Round(time.Microsecond), coldN, deltaPer.Round(time.Microsecond), n,
		float64(coldPer)/float64(deltaPer))
	return nil
}

// benchTenants is the -kind tenants mode: an in-process model of the
// multi-tenant daemon. It generates a fleet of synthetic tenant bundles,
// gives each a warm-cache pool on one shared ledger, and round-robins
// consistency queries across the fleet from -parallel workers, reporting
// throughput plus the ledger's eviction behaviour under -cache-budget-mb.
func benchTenants(ctx context.Context, lim *limits, budget muppet.Budget, n, parallel, fleet, budgetMB int) error {
	if fleet <= 0 {
		return fmt.Errorf("bad -tenants %d (want > 0)", fleet)
	}
	type bundle struct {
		sys   *muppet.System
		k8s   *muppet.Party
		istio *muppet.Party
		pool  *tenant.CachePool
	}
	ledger := tenant.NewLedger(int64(budgetMB) << 20)
	bundles := make([]*bundle, fleet)
	for i := range bundles {
		// Vary the scenario size across the fleet so tenants' warm caches
		// differ in weight, giving the eviction policy real choices.
		sc := muppet.GenerateScenario(muppet.ScenarioParams{
			Services:        3 + i%3,
			PortsPerService: 2,
			Flows:           3,
			BannedPorts:     1,
			Seed:            int64(101 + i),
		})
		sys, err := sc.System()
		if err != nil {
			return err
		}
		k8s, _, err := muppet.NewK8sParty(sys, sc.K8sCurrent, muppet.AllSoft(), nil)
		if err != nil {
			return err
		}
		istio, _, err := muppet.NewIstioParty(sys, sc.IstioCurrent, muppet.AllSoft(), sc.IstioRelaxed)
		if err != nil {
			return err
		}
		bundles[i] = &bundle{sys: sys, k8s: k8s, istio: istio,
			pool: ledger.NewPool(fmt.Sprintf("tenant-%02d", i))}
	}
	workers := parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var served atomic.Int64
	start := time.Now()
	err := muppet.FanOut(ctx, workers, workers, func(ctx context.Context, w int) error {
		for q := w; q < n; q += workers {
			bu := bundles[q%fleet]
			c := bu.pool.Checkout()
			res := c.LocalConsistencyCtx(ctx, bu.sys, bu.k8s, []*muppet.Party{bu.istio}, budget)
			bu.pool.Checkin(c)
			if res.Indeterminate {
				return fmt.Errorf("query %d (%s) indeterminate (%s)", q, bu.pool.Tenant(), res.Stop)
			}
			served.Add(1)
		}
		return nil
	})
	elapsed := time.Since(start)
	if lim.verbose {
		var agg muppet.ReuseStats
		for _, bu := range bundles {
			agg.Add(bu.pool.Stats().Reuse)
		}
		printReuse(agg, nil)
	}
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			fmt.Printf("INDETERMINATE: served %d/%d queries in %v\n", served.Load(), n, elapsed.Round(time.Millisecond))
			return statusErr(exitIndeterminate)
		}
		return err
	}
	qps := float64(served.Load()) / elapsed.Seconds()
	fmt.Printf("served %d queries across %d tenants with %d workers in %v (%.1f queries/s)\n",
		served.Load(), fleet, workers, elapsed.Round(time.Millisecond), qps)
	fmt.Printf("cache budget %d MiB: %d idle bytes, %d evictions\n",
		budgetMB, ledger.TotalBytes(), ledger.Evictions())
	return nil
}

func runEval(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	var in inputs
	in.register(fs)
	src := fs.String("src", "", "source service")
	dst := fs.String("dst", "", "destination service")
	port := fs.Int("port", 0, "destination port")
	fs.Parse(args)
	if *src == "" || *dst == "" || *port == 0 {
		return fmt.Errorf("eval needs -src, -dst and -port")
	}
	if in.cfg.Files == "" {
		return fmt.Errorf("-files is required")
	}
	bundle, err := muppet.LoadFiles(strings.Split(in.cfg.Files, ",")...)
	if err != nil {
		return err
	}
	v := muppet.Evaluate(bundle.Mesh, bundle.K8s, bundle.Istio,
		muppet.Flow{Src: *src, Dst: *dst, DstPort: *port})
	if v.Allowed {
		fmt.Println("ALLOWED")
		return nil
	}
	fmt.Println("DENIED:", v.Reason)
	return statusErr(exitUnsat)
}
