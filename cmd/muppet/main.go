// Command muppet is the CLI front end for the solver-aided multi-party
// configuration toolkit. It mirrors the paper's workflows:
//
//	muppet check      — local consistency of one party's offer (Alg. 1)
//	muppet envelope   — compute and print E_{A→B} (Alg. 3, Fig. 5)
//	muppet reconcile  — reconcile all offers (Alg. 2)
//	muppet conform    — the conformance workflow (Fig. 7)
//	muppet negotiate  — the negotiation workflow (Fig. 9)
//	muppet eval       — evaluate one flow under concrete configurations
//
// System structure and current configurations come from YAML files (K8s
// Services and NetworkPolicies, Istio AuthorizationPolicies); goals come
// from CSV tables (see package goals for the format).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"muppet"
	"muppet/internal/target"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "check":
		err = runCheck(args)
	case "envelope":
		err = runEnvelope(args)
	case "reconcile":
		err = runReconcile(args)
	case "conform":
		err = runConform(args)
	case "negotiate":
		err = runNegotiate(args)
	case "eval":
		err = runEval(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "muppet: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "muppet:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: muppet <command> [flags]

commands:
  check      local consistency of one party's offer (Alg. 1)
  envelope   compute an envelope between parties (Alg. 3)
  reconcile  reconcile all parties' offers (Alg. 2)
  conform    run the conformance workflow (Fig. 7)
  negotiate  run the negotiation workflow (Fig. 9)
  eval       evaluate a single flow under the loaded configurations

common flags:
  -files        comma-separated YAML files (Services, NetworkPolicies,
                AuthorizationPolicies)
  -k8s-goals    CSV file with K8s goals (port,perm,selector)
  -istio-goals  CSV file with Istio goals (src,dst,srcPort,dstPort[,perm])
  -k8s-offer    fixed|soft|holes (default fixed)
  -istio-offer  fixed|soft|holes (default soft)
  -ports        comma-separated extra ports for the inventory

reconcile/conform/negotiate also accept:
  -strategy     minimal-edit distance search: auto|linear|binary
`)
}

// inputs gathers the flags shared by all workflow commands.
type inputs struct {
	files      string
	k8sGoals   string
	istioGoals string
	k8sOffer   string
	istioOffer string
	ports      string
}

func (in *inputs) register(fs *flag.FlagSet) {
	fs.StringVar(&in.files, "files", "", "comma-separated YAML files")
	fs.StringVar(&in.k8sGoals, "k8s-goals", "", "K8s goals CSV")
	fs.StringVar(&in.istioGoals, "istio-goals", "", "Istio goals CSV")
	fs.StringVar(&in.k8sOffer, "k8s-offer", "fixed", "K8s offer: fixed|soft|holes")
	fs.StringVar(&in.istioOffer, "istio-offer", "soft", "Istio offer: fixed|soft|holes")
	fs.StringVar(&in.ports, "ports", "", "extra ports, comma-separated")
}

type session struct {
	sys        *muppet.System
	k8sParty   *muppet.Party
	k8sState   *muppet.K8sPartyState
	istioParty *muppet.Party
	istioState *muppet.IstioPartyState
}

func (in *inputs) load() (*session, error) {
	if in.files == "" {
		return nil, fmt.Errorf("-files is required")
	}
	bundle, err := muppet.LoadFiles(strings.Split(in.files, ",")...)
	if err != nil {
		return nil, err
	}
	var kg []muppet.K8sGoal
	if in.k8sGoals != "" {
		if kg, err = muppet.LoadK8sGoals(in.k8sGoals); err != nil {
			return nil, err
		}
	}
	var ig []muppet.IstioGoal
	if in.istioGoals != "" {
		if ig, err = muppet.LoadIstioGoals(in.istioGoals); err != nil {
			return nil, err
		}
	}
	extra, err := parsePorts(in.ports)
	if err != nil {
		return nil, err
	}
	for _, g := range kg {
		extra = append(extra, g.Port)
	}
	for _, g := range ig {
		for _, t := range []muppet.PortTerm{g.SrcPort, g.DstPort} {
			if t.Kind == muppet.PortLit {
				extra = append(extra, t.Port)
			}
		}
	}
	sys, err := muppet.NewSystem(bundle.Mesh, bundle.K8s.Policies, bundle.Istio.Policies, extra)
	if err != nil {
		return nil, err
	}
	s := &session{sys: sys}
	k8sOffer, err := parseOffer(in.k8sOffer)
	if err != nil {
		return nil, err
	}
	istioOffer, err := parseOffer(in.istioOffer)
	if err != nil {
		return nil, err
	}
	if s.k8sParty, s.k8sState, err = muppet.NewK8sParty(sys, bundle.K8s, k8sOffer, kg); err != nil {
		return nil, err
	}
	if s.istioParty, s.istioState, err = muppet.NewIstioParty(sys, bundle.Istio, istioOffer, ig); err != nil {
		return nil, err
	}
	return s, nil
}

func parseOffer(s string) (muppet.Offer, error) {
	switch s {
	case "fixed", "":
		return muppet.Offer{}, nil
	case "soft":
		return muppet.AllSoft(), nil
	case "holes":
		return muppet.AllHoles(), nil
	}
	return muppet.Offer{}, fmt.Errorf("bad offer mode %q (want fixed|soft|holes)", s)
}

// registerStrategy adds the -strategy flag shared by the commands that
// run minimal-edit search (reconcile, conform, negotiate).
func registerStrategy(fs *flag.FlagSet) *string {
	return fs.String("strategy", "auto", "minimal-edit distance search: auto|linear|binary")
}

// applyStrategy sets the target package's default search strategy, which
// workspace minimisation (Options zero value) follows.
func applyStrategy(name string) error {
	st, ok := target.ParseStrategy(name)
	if !ok {
		return fmt.Errorf("bad -strategy %q (want auto|linear|binary)", name)
	}
	target.SetDefaultStrategy(st)
	return nil
}

func parsePorts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad port %q", part)
		}
		out = append(out, p)
	}
	return out, nil
}

func (s *session) party(name string) (*muppet.Party, error) {
	switch strings.ToLower(name) {
	case "k8s", "kubernetes":
		return s.k8sParty, nil
	case "istio":
		return s.istioParty, nil
	}
	return nil, fmt.Errorf("unknown party %q (want k8s or istio)", name)
}

func runCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	var in inputs
	in.register(fs)
	party := fs.String("party", "k8s", "party to check: k8s|istio")
	fs.Parse(args)
	s, err := in.load()
	if err != nil {
		return err
	}
	subject, err := s.party(*party)
	if err != nil {
		return err
	}
	other := s.istioParty
	if subject == s.istioParty {
		other = s.k8sParty
	}
	res := muppet.LocalConsistency(s.sys, subject, []*muppet.Party{other})
	if !res.OK {
		fmt.Println("INCONSISTENT")
		fmt.Println(res.Feedback)
		os.Exit(1)
	}
	fmt.Println("CONSISTENT")
	for _, e := range res.Edits {
		fmt.Println("  soft edit:", e)
	}
	return nil
}

func runEnvelope(args []string) error {
	fs := flag.NewFlagSet("envelope", flag.ExitOnError)
	var in inputs
	in.register(fs)
	from := fs.String("from", "k8s", "sender party")
	to := fs.String("to", "istio", "recipient party")
	leakage := fs.Bool("leakage", false, "also print the leaked atoms")
	english := fs.Bool("english", false, "also print a prose rendering")
	fs.Parse(args)
	s, err := in.load()
	if err != nil {
		return err
	}
	sender, err := s.party(*from)
	if err != nil {
		return err
	}
	recipient, err := s.party(*to)
	if err != nil {
		return err
	}
	env := muppet.ComputeEnvelope(s.sys, recipient, []*muppet.Party{sender})
	fmt.Print(env)
	if env.Unsatisfiable() {
		fmt.Println("// WARNING: unsatisfiable — the sender's own settings defeat its goals")
	}
	if *english {
		fmt.Println()
		fmt.Print(muppet.EnglishEnvelope(s.sys, env))
	}
	if *leakage {
		fmt.Println("// leaked atoms:", strings.Join(env.LeakedAtoms(), ", "))
	}
	return nil
}

func runReconcile(args []string) error {
	fs := flag.NewFlagSet("reconcile", flag.ExitOnError)
	var in inputs
	in.register(fs)
	strategy := registerStrategy(fs)
	fs.Parse(args)
	if err := applyStrategy(*strategy); err != nil {
		return err
	}
	s, err := in.load()
	if err != nil {
		return err
	}
	res := muppet.Reconcile(s.sys, []*muppet.Party{s.k8sParty, s.istioParty})
	if !res.OK {
		fmt.Println("CANNOT RECONCILE")
		fmt.Println(res.Feedback)
		os.Exit(1)
	}
	s.k8sParty.Adopt(res.Instance)
	s.istioParty.Adopt(res.Instance)
	fmt.Println("RECONCILED")
	for _, e := range res.Edits {
		fmt.Println("  soft edit:", e)
	}
	fmt.Println("--- K8s configuration ---")
	fmt.Print(s.k8sParty.Describe())
	fmt.Println("--- Istio configuration ---")
	fmt.Print(s.istioParty.Describe())
	return nil
}

func runConform(args []string) error {
	fs := flag.NewFlagSet("conform", flag.ExitOnError)
	var in inputs
	in.register(fs)
	provider := fs.String("provider", "k8s", "inflexible provider party")
	strategy := registerStrategy(fs)
	fs.Parse(args)
	if err := applyStrategy(*strategy); err != nil {
		return err
	}
	s, err := in.load()
	if err != nil {
		return err
	}
	prov, err := s.party(*provider)
	if err != nil {
		return err
	}
	tenant := s.istioParty
	if prov == s.istioParty {
		tenant = s.k8sParty
	}
	out := muppet.RunConformance(s.sys, prov, tenant)
	fmt.Printf("provider locally consistent: %v\n", out.ProviderConsistent)
	if out.Envelope != nil {
		fmt.Print(out.Envelope)
	}
	if len(out.Edits) > 0 {
		fmt.Println("tenant revision edits:")
		for _, e := range out.Edits {
			fmt.Println("  ", e)
		}
	}
	if !out.Reconciled {
		fmt.Printf("FAILED at %s\n%s\n", out.FailedStep, out.Feedback)
		os.Exit(1)
	}
	fmt.Println("CONFORMED")
	fmt.Println("--- delivered tenant configuration ---")
	fmt.Print(tenant.Describe())
	return nil
}

func runNegotiate(args []string) error {
	fs := flag.NewFlagSet("negotiate", flag.ExitOnError)
	var in inputs
	in.register(fs)
	rounds := fs.Int("rounds", 0, "max revision rounds (0 = default)")
	strategy := registerStrategy(fs)
	fs.Parse(args)
	if err := applyStrategy(*strategy); err != nil {
		return err
	}
	s, err := in.load()
	if err != nil {
		return err
	}
	n := muppet.NewNegotiation(s.sys, s.k8sParty, s.istioParty)
	if *rounds > 0 {
		n.MaxRounds = *rounds
	}
	out := n.Run()
	if out.InitialReconcile {
		fmt.Println("initial offers reconciled immediately")
	}
	for _, r := range out.Rounds {
		fmt.Printf("round %d: %s ", r.Round, r.Party)
		switch {
		case r.Stuck:
			fmt.Println("is stuck — administrators must talk")
		case r.ConformedAlready:
			fmt.Println("already conforms")
		case r.Revised:
			fmt.Printf("revised with %d edits\n", len(r.Edits))
		}
		if r.Reconciled {
			fmt.Println("  → reconciled")
		}
	}
	if !out.Reconciled {
		fmt.Printf("NEGOTIATION FAILED\n%s\n", out.Feedback)
		os.Exit(1)
	}
	fmt.Println("NEGOTIATED")
	fmt.Println("--- K8s configuration ---")
	fmt.Print(s.k8sParty.Describe())
	fmt.Println("--- Istio configuration ---")
	fmt.Print(s.istioParty.Describe())
	return nil
}

func runEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	var in inputs
	in.register(fs)
	src := fs.String("src", "", "source service")
	dst := fs.String("dst", "", "destination service")
	port := fs.Int("port", 0, "destination port")
	fs.Parse(args)
	if *src == "" || *dst == "" || *port == 0 {
		return fmt.Errorf("eval needs -src, -dst and -port")
	}
	if in.files == "" {
		return fmt.Errorf("-files is required")
	}
	bundle, err := muppet.LoadFiles(strings.Split(in.files, ",")...)
	if err != nil {
		return err
	}
	v := muppet.Evaluate(bundle.Mesh, bundle.K8s, bundle.Istio,
		muppet.Flow{Src: *src, Dst: *dst, DstPort: *port})
	if v.Allowed {
		fmt.Println("ALLOWED")
		return nil
	}
	fmt.Println("DENIED:", v.Reason)
	os.Exit(1)
	return nil
}
