// muppet diff and muppet watch: the CLI face of delta re-reconciliation.
// diff compares two on-disk revisions of a tenant bundle and (optionally)
// serves an op for the new revision through the warm rebase path, showing
// how incremental the step was. watch follows a daemon's watch endpoint
// and prints each revision's verdict as it is published.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"muppet"
	"muppet/internal/server"
	"muppet/internal/tenant"
)

// loadRevision loads a tenant revision from a tenant.yaml path or a
// directory containing one.
func loadRevision(path string) (*server.State, error) {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		path = filepath.Join(path, tenant.ManifestName)
	}
	st, _, err := server.ManifestLoader(path)()
	if err != nil {
		return nil, err
	}
	return st, nil
}

// printDeltaStats renders one DeltaStats as a // commentary line, the
// same register as -v reuse statistics.
func printDeltaStats(ds muppet.DeltaStats) {
	if ds.Cold {
		fmt.Printf("// delta: cold rebuild (%s)\n", ds.Reason)
		return
	}
	fmt.Printf("// delta: warm rebase — groups: %d kept, %d re-asserted; goals: %d kept, +%d −%d; atoms changed: %d; vars restored: %d\n",
		ds.GroupsKept, ds.GroupsReasserted, ds.GoalsKept, ds.GoalsAdded, ds.GoalsRemoved, ds.AtomsChanged, ds.Restored)
}

// runDiff implements muppet diff: compare -before and -after revisions,
// print the changed goals and relational atoms, and with -op serve that
// op for the after revision from the before revision's warm sessions
// (cold rebuild when the revisions are incompatible), exiting with the
// op's verdict code. Without -op the exit code follows diff convention:
// 0 when the revisions are identical, 1 when they differ.
func runDiff(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	var lim limits
	lim.register(fs)
	before := fs.String("before", "", "old revision: tenant.yaml or its directory")
	after := fs.String("after", "", "new revision: tenant.yaml or its directory")
	op := fs.String("op", "", "also serve this op for the new revision via warm rebase: "+strings.Join(server.Ops(), "|"))
	party := fs.String("party", "", "party for ops that need one (check)")
	provider := fs.String("provider", "", "provider for conform")
	fs.Parse(args)
	if *before == "" || *after == "" {
		return fmt.Errorf("%w: diff needs -before and -after", server.ErrUsage)
	}
	if *op != "" {
		known := false
		for _, o := range server.Ops() {
			known = known || o == *op
		}
		if !known {
			return fmt.Errorf("%w: unknown -op %q (want %s)", server.ErrUsage, *op, strings.Join(server.Ops(), "|"))
		}
	}
	ctx, cancel, budget, err := lim.apply(ctx)
	if err != nil {
		return err
	}
	defer cancel()

	stA, err := loadRevision(*before)
	if err != nil {
		return fmt.Errorf("before: %w", err)
	}
	stB, err := loadRevision(*after)
	if err != nil {
		return fmt.Errorf("after: %w", err)
	}
	snapA, err := stA.Snapshot()
	if err != nil {
		return err
	}
	snapB, err := stB.Snapshot()
	if err != nil {
		return err
	}
	plan := muppet.CompareRevisions(snapA, snapB)
	fmt.Println(plan.Summary())
	if *op == "" {
		if plan.Unchanged() {
			return nil
		}
		return statusErr(exitUnsat)
	}

	// Warm the old revision's sessions, then serve the op for the new one
	// through the rebase path — the minimal re-assertion the watch daemon
	// would compute for the same edit.
	req := server.Request{Op: *op, Party: *party, Provider: *provider}
	cache := muppet.NewSolveCache()
	serveState := stB
	if plan.Compatible {
		if _, err := server.Exec(ctx, stA, cache, req, budget); err != nil {
			return err
		}
		if rb, err := stB.RebasedOn(stA.Sys); err == nil {
			serveState = rb
		} else {
			cache = muppet.NewSolveCache() // incompatible in practice: go cold
		}
	}
	var resp server.Response
	var execErr error
	ds := cache.Rebase(plan, func() {
		resp, execErr = server.Exec(ctx, serveState, cache, req, budget)
	})
	if execErr != nil {
		return execErr
	}
	printDeltaStats(ds)
	if lim.verbose {
		printReuse(cache.Stats(), cache.Workers())
	}
	fmt.Print(resp.Output)
	if resp.Code != exitSat {
		return statusErr(resp.Code)
	}
	return nil
}

// runWatch implements muppet watch: a long-poll client for the daemon's
// watch endpoints. Each event prints a revision marker line followed by
// the op's output (and the delta commentary unless -raw), so scripts can
// split the stream on the markers.
func runWatch(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	addr := fs.String("addr", "", "muppetd address host:port (required)")
	tenantID := fs.String("tenant", "", "tenant to watch (default: the daemon's default tenant)")
	op := fs.String("op", "reconcile", "op to watch: "+strings.Join(server.Ops(), "|"))
	party := fs.String("party", "", "party for ops that need one (check)")
	provider := fs.String("provider", "", "provider for conform")
	events := fs.Int("events", 0, "stop after this many events (0 = until terminal or interrupt)")
	raw := fs.Bool("raw", false, "print only marker lines and op output, no delta commentary")
	fs.Parse(args)
	if *addr == "" {
		return fmt.Errorf("%w: watch needs -addr", server.ErrUsage)
	}
	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	path := base + "/v1/watch/" + *op
	if *tenantID != "" {
		path = base + "/t/" + *tenantID + "/watch/" + *op
	}
	query := ""
	if *party != "" {
		query += "&party=" + *party
	}
	if *provider != "" {
		query += "&provider=" + *provider
	}

	client := &http.Client{} // no client timeout: long-polls park by design
	var since int64
	seen := 0
	for {
		url := fmt.Sprintf("%s?rev=%d%s", path, since, query)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return err
		}
		res, err := client.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return nil // interrupted while parked: clean exit
			}
			return err
		}
		switch res.StatusCode {
		case http.StatusNoContent:
			res.Body.Close()
			continue // poll timeout: re-poll from the same revision
		case http.StatusOK:
		default:
			res.Body.Close()
			return fmt.Errorf("watch: daemon answered %s", res.Status)
		}
		var ev server.WatchEvent
		err = json.NewDecoder(res.Body).Decode(&ev)
		res.Body.Close()
		if err != nil {
			return fmt.Errorf("watch: bad event: %w", err)
		}
		if ev.Terminal {
			fmt.Printf("=== terminated (%s) ===\n", ev.Reason)
			return nil
		}
		fmt.Printf("=== revision %d (%s, code %d) ===\n", ev.Revision, ev.Op, ev.Code)
		if !*raw && ev.Delta != nil {
			printDeltaStats(muppet.DeltaStats{
				Cold: ev.Delta.Cold, Reason: ev.Delta.Reason,
				GroupsKept: ev.Delta.GroupsKept, GroupsReasserted: ev.Delta.GroupsReasserted,
				GoalsKept: ev.Delta.GoalsKept, GoalsAdded: ev.Delta.GoalsAdded,
				GoalsRemoved: ev.Delta.GoalsRemoved, AtomsChanged: ev.Delta.AtomsChanged,
				Restored: ev.Delta.Restored,
			})
		}
		fmt.Print(ev.Output)
		since = ev.Revision
		seen++
		if *events > 0 && seen >= *events {
			return nil
		}
	}
}
