package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"muppet/internal/feder"
	"muppet/internal/server"
)

// clientExecute routes one mediation request through a running muppetd
// at addr — to /v1/{op} by default, or /t/{tenant}/{op} when -tenant
// names one of the daemon's bundles — and prints its verdict, which is
// byte-identical to the local one (both render through server.Exec).
// Budgets travel as headers; the solver-configuration flags are
// daemon-side startup knobs, so using them together with -addr is an
// error rather than a silent no-op.
//
// Retryable failures — 429 admission pushback, 503 drain, connection
// errors — are retried up to retries times with exponential backoff and
// jitter, honouring the daemon's Retry-After and capped by the request
// deadline. Every mediation op is a safe retry: reads are pure, and the
// daemon builds fresh parties per request.
func clientExecute(ctx context.Context, addr, tenantID string, lim *limits, strategy string, retries int, req server.Request) error {
	if lim.portfolio != 0 {
		return fmt.Errorf("-portfolio is a daemon-side setting; start muppetd with it instead of combining it with -addr")
	}
	if strategy != "" && strategy != "auto" {
		return fmt.Errorf("-strategy is a daemon-side setting; start muppetd with it instead of combining it with -addr")
	}
	if lim.verbose {
		return fmt.Errorf("-v statistics live on the daemon; scrape its /metrics endpoint instead of combining -v with -addr")
	}
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	path := "/v1/" + req.Op
	if tenantID != "" {
		path = "/t/" + tenantID + "/" + req.Op
	}
	url := strings.TrimSuffix(base, "/") + path
	// The transport deadline must outlast the solve budget; with no budget
	// the request waits as long as the daemon does.
	client := &http.Client{}
	if lim.timeout > 0 {
		client.Timeout = lim.timeout + 30*time.Second
	}

	var lastErr error
	for attempt := 0; ; attempt++ {
		var hint time.Duration
		done, err := clientAttempt(ctx, client, url, body, lim, &hint)
		if done {
			return err
		}
		lastErr = err
		if attempt >= retries {
			return lastErr
		}
		delay := feder.BackoffDelay(attempt, 50*time.Millisecond, 2*time.Second, rand.Float64)
		if hint > delay {
			delay = hint
		}
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) < delay {
			return lastErr // the deadline caps the retry budget
		}
		select {
		case <-ctx.Done():
			return lastErr
		case <-time.After(delay):
		}
	}
}

// clientAttempt makes one request. done=false means the failure is
// retryable (429, 503, connection error); hint carries the daemon's
// Retry-After when it sent one.
func clientAttempt(ctx context.Context, client *http.Client, url string, body []byte, lim *limits, hint *time.Duration) (done bool, err error) {
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return true, err
	}
	hr.Header.Set("Content-Type", "application/json")
	headerTimeout(hr, lim)
	res, err := client.Do(hr)
	if err != nil {
		if ctx.Err() != nil {
			return true, err // cancelled or past deadline: do not retry
		}
		return false, err
	}
	defer res.Body.Close()
	switch res.StatusCode {
	case http.StatusOK:
		var out server.Response
		if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
			return true, fmt.Errorf("bad daemon response: %v", err)
		}
		fmt.Print(out.Output)
		if out.Code != exitSat {
			return true, statusErr(out.Code)
		}
		return true, nil
	case http.StatusTooManyRequests:
		if ra, ok := feder.RetryAfter(res.Header); ok {
			*hint = ra
		}
		return false, fmt.Errorf("daemon overloaded (retry after %ss)", res.Header.Get("Retry-After"))
	case http.StatusServiceUnavailable:
		if ra, ok := feder.RetryAfter(res.Header); ok {
			*hint = ra
		}
		return false, fmt.Errorf("daemon is draining")
	default:
		msg, _ := io.ReadAll(io.LimitReader(res.Body, 4096))
		err := fmt.Errorf("daemon: %s: %s", res.Status, strings.TrimSpace(string(msg)))
		if res.StatusCode == http.StatusBadRequest {
			return true, fmt.Errorf("%w: %v", server.ErrUsage, err)
		}
		return true, err
	}
}

// headerTimeout applies the budget headers to one outbound request.
func headerTimeout(hr *http.Request, lim *limits) {
	if lim.timeout > 0 {
		hr.Header.Set(server.HeaderTimeout, lim.timeout.String())
	}
	if lim.maxConflicts > 0 {
		hr.Header.Set(server.HeaderMaxConflicts, strconv.FormatInt(lim.maxConflicts, 10))
	}
}
