package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"muppet/internal/server"
)

// clientExecute routes one mediation request through a running muppetd
// at addr — to /v1/{op} by default, or /t/{tenant}/{op} when -tenant
// names one of the daemon's bundles — and prints its verdict, which is
// byte-identical to the local one (both render through server.Exec).
// Budgets travel as headers; the solver-configuration flags are
// daemon-startup knobs, so using them together with -addr is an error
// rather than a silent no-op.
func clientExecute(ctx context.Context, addr, tenantID string, lim *limits, strategy string, req server.Request) error {
	if lim.portfolio != 0 {
		return fmt.Errorf("-portfolio is a daemon-side setting; start muppetd with it instead of combining it with -addr")
	}
	if strategy != "" && strategy != "auto" {
		return fmt.Errorf("-strategy is a daemon-side setting; start muppetd with it instead of combining it with -addr")
	}
	if lim.verbose {
		return fmt.Errorf("-v statistics live on the daemon; scrape its /metrics endpoint instead of combining -v with -addr")
	}
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	path := "/v1/" + req.Op
	if tenantID != "" {
		path = "/t/" + tenantID + "/" + req.Op
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimSuffix(base, "/")+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hr.Header.Set("Content-Type", "application/json")
	if lim.timeout > 0 {
		hr.Header.Set(server.HeaderTimeout, lim.timeout.String())
	}
	if lim.maxConflicts > 0 {
		hr.Header.Set(server.HeaderMaxConflicts, strconv.FormatInt(lim.maxConflicts, 10))
	}
	// The transport deadline must outlast the solve budget; with no budget
	// the request waits as long as the daemon does.
	client := &http.Client{}
	if lim.timeout > 0 {
		client.Timeout = lim.timeout + 30*time.Second
	}
	res, err := client.Do(hr)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	switch res.StatusCode {
	case http.StatusOK:
		var out server.Response
		if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
			return fmt.Errorf("bad daemon response: %v", err)
		}
		fmt.Print(out.Output)
		if out.Code != exitSat {
			return statusErr(out.Code)
		}
		return nil
	case http.StatusTooManyRequests:
		return fmt.Errorf("daemon overloaded (retry after %ss)", res.Header.Get("Retry-After"))
	case http.StatusServiceUnavailable:
		return fmt.Errorf("daemon is draining")
	default:
		msg, _ := io.ReadAll(io.LimitReader(res.Body, 4096))
		err := fmt.Errorf("daemon: %s: %s", res.Status, strings.TrimSpace(string(msg)))
		if res.StatusCode == http.StatusBadRequest {
			return fmt.Errorf("%w: %v", server.ErrUsage, err)
		}
		return err
	}
}
