package main

import (
	"context"
	"errors"
	"testing"

	"muppet"
)

const fig1Files = "../../testdata/fig1/mesh.yaml,../../testdata/fig1/k8s_current.yaml,../../testdata/fig1/istio_current.yaml"

func TestParseOffer(t *testing.T) {
	for _, c := range []struct {
		in   string
		soft int
		hole int
	}{
		{"fixed", 0, 0},
		{"", 0, 0},
		{"soft", 1, 0},
		{"holes", 0, 1},
	} {
		o, err := parseOffer(c.in)
		if err != nil {
			t.Fatalf("%q: %v", c.in, err)
		}
		if len(o.Soft) != c.soft || len(o.Holes) != c.hole {
			t.Fatalf("%q: got %+v", c.in, o)
		}
	}
	if _, err := parseOffer("bogus"); err == nil {
		t.Fatal("bogus offer mode must error")
	}
}

func TestParsePorts(t *testing.T) {
	ports, err := parsePorts("23, 80,443")
	if err != nil || len(ports) != 3 || ports[0] != 23 || ports[2] != 443 {
		t.Fatalf("ports=%v err=%v", ports, err)
	}
	if _, err := parsePorts("x"); err == nil {
		t.Fatal("bad port must error")
	}
	if ports, err := parsePorts(""); err != nil || ports != nil {
		t.Fatalf("empty ports: %v %v", ports, err)
	}
}

func TestInputsLoad(t *testing.T) {
	in := inputs{
		files:      fig1Files,
		k8sGoals:   "../../testdata/fig1/k8s_goals.csv",
		istioGoals: "../../testdata/fig1/istio_goals_revised.csv",
		k8sOffer:   "fixed",
		istioOffer: "soft",
	}
	s, err := in.load()
	if err != nil {
		t.Fatal(err)
	}
	if s.k8sParty == nil || s.istioParty == nil {
		t.Fatal("parties not built")
	}
	if p, err := s.party("k8s"); err != nil || p != s.k8sParty {
		t.Fatalf("party lookup k8s: %v", err)
	}
	if p, err := s.party("Istio"); err != nil || p != s.istioParty {
		t.Fatalf("party lookup istio: %v", err)
	}
	if _, err := s.party("router"); err == nil {
		t.Fatal("unknown party must error")
	}
}

func TestInputsLoadErrors(t *testing.T) {
	if _, err := (&inputs{}).load(); err == nil {
		t.Fatal("missing -files must error")
	}
	in := inputs{files: "does-not-exist.yaml"}
	if _, err := in.load(); err == nil {
		t.Fatal("missing file must error")
	}
	in = inputs{files: fig1Files, k8sOffer: "bogus"}
	if _, err := in.load(); err == nil {
		t.Fatal("bad offer must error")
	}
}

func TestRunEnvelopeSucceeds(t *testing.T) {
	err := runEnvelope(context.Background(), []string{
		"-files", fig1Files,
		"-k8s-goals", "../../testdata/fig1/k8s_goals.csv",
		"-from", "k8s", "-to", "istio",
		"-english", "-leakage",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunCheckSucceeds(t *testing.T) {
	err := runCheck(context.Background(), []string{
		"-files", fig1Files,
		"-k8s-goals", "../../testdata/fig1/k8s_goals.csv",
		"-party", "k8s",
		"-istio-offer", "holes",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunReconcileSucceeds(t *testing.T) {
	err := runReconcile(context.Background(), []string{
		"-files", fig1Files,
		"-k8s-goals", "../../testdata/fig1/k8s_goals.csv",
		"-istio-goals", "../../testdata/fig1/istio_goals_revised.csv",
		"-k8s-offer", "soft", "-istio-offer", "soft",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunReconcileStrategyFlag(t *testing.T) {
	defer applyStrategy("auto")
	for _, strategy := range []string{"linear", "binary"} {
		err := runReconcile(context.Background(), []string{
			"-files", fig1Files,
			"-k8s-goals", "../../testdata/fig1/k8s_goals.csv",
			"-istio-goals", "../../testdata/fig1/istio_goals_revised.csv",
			"-k8s-offer", "soft", "-istio-offer", "soft",
			"-strategy", strategy,
		})
		if err != nil {
			t.Fatalf("-strategy %s: %v", strategy, err)
		}
	}
	if err := applyStrategy("bogus"); err == nil {
		t.Fatal("bad -strategy must error")
	}
}

func TestRunConformSucceeds(t *testing.T) {
	err := runConform(context.Background(), []string{
		"-files", fig1Files,
		"-k8s-goals", "../../testdata/fig1/k8s_goals.csv",
		"-istio-goals", "../../testdata/fig1/istio_goals_revised.csv",
		"-k8s-offer", "fixed", "-istio-offer", "soft",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunNegotiateSucceeds(t *testing.T) {
	err := runNegotiate(context.Background(), []string{
		"-files", fig1Files,
		"-k8s-goals", "../../testdata/fig1/k8s_goals.csv",
		"-istio-goals", "../../testdata/fig1/istio_goals_revised.csv",
		"-k8s-offer", "soft", "-istio-offer", "soft",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunEvalSucceeds(t *testing.T) {
	err := runEval(context.Background(), []string{
		"-files", fig1Files,
		"-src", "test-backend", "-dst", "test-frontend", "-port", "23",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := runEval(context.Background(), []string{"-files", fig1Files}); err == nil {
		t.Fatal("missing flow flags must error")
	}
}

func TestExtraPortsFlowIntoSystem(t *testing.T) {
	in := inputs{
		files: fig1Files,
		ports: "9999",
	}
	s, err := in.load()
	if err != nil {
		t.Fatal(err)
	}
	if !s.sys.HasPort(9999) {
		t.Fatal("-ports must extend the inventory")
	}
	_ = muppet.Flow{}
}

func TestRunCtxUsageExitCodes(t *testing.T) {
	if code := runCtx(context.Background(), nil); code != exitUsage {
		t.Fatalf("no command: exit %d, want %d", code, exitUsage)
	}
	if code := runCtx(context.Background(), []string{"bogus"}); code != exitUsage {
		t.Fatalf("unknown command: exit %d, want %d", code, exitUsage)
	}
	if code := runCtx(context.Background(), []string{"help"}); code != exitSat {
		t.Fatalf("help: exit %d, want %d", code, exitSat)
	}
}

// TestRunCtxCancelledIsIndeterminate pins the SIGINT wiring: run()
// translates the signal into context cancellation, and a cancelled
// context must surface as the indeterminate exit code, never as a
// fabricated UNSAT verdict.
func TestRunCtxCancelledIsIndeterminate(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // as if SIGINT had already arrived
	code := runCtx(ctx, []string{"reconcile",
		"-files", fig1Files,
		"-k8s-goals", "../../testdata/fig1/k8s_goals.csv",
		"-istio-goals", "../../testdata/fig1/istio_goals_revised.csv",
		"-k8s-offer", "soft", "-istio-offer", "soft",
	})
	if code != exitIndeterminate {
		t.Fatalf("cancelled reconcile: exit %d, want %d", code, exitIndeterminate)
	}
}

// TestRunCtxTimeoutIsIndeterminate is the acceptance criterion of the
// budget work: reconcile under an unmeetable -timeout exits
// indeterminate with a stop reason, while the same invocation without
// a timeout reconciles (TestRunReconcileSucceeds above).
func TestRunCtxTimeoutIsIndeterminate(t *testing.T) {
	code := runCtx(context.Background(), []string{"reconcile",
		"-timeout", "1ns",
		"-files", fig1Files,
		"-k8s-goals", "../../testdata/fig1/k8s_goals.csv",
		"-istio-goals", "../../testdata/fig1/istio_goals_revised.csv",
		"-k8s-offer", "soft", "-istio-offer", "soft",
	})
	if code != exitIndeterminate {
		t.Fatalf("1ns reconcile: exit %d, want %d", code, exitIndeterminate)
	}
}

func TestRunCtxRecoversPanics(t *testing.T) {
	orig := dispatchFn
	defer func() { dispatchFn = orig }()
	dispatchFn = func(context.Context, string, []string) error {
		panic("relational evaluator arity mismatch")
	}
	if code := runCtx(context.Background(), []string{"check"}); code != exitInternal {
		t.Fatalf("panicking command: exit %d, want %d", code, exitInternal)
	}
}

func TestStatusErrRoundTrip(t *testing.T) {
	var se statusErr
	if !errors.As(error(statusErr(exitUnsat)), &se) || int(se) != exitUnsat {
		t.Fatalf("statusErr did not round-trip: %v", se)
	}
	if statusErr(3).Error() != "exit status 3" {
		t.Fatalf("unexpected message %q", statusErr(3).Error())
	}
}
