package main

import (
	"context"
	"errors"
	"io"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"muppet"
	"muppet/internal/server"
)

const fig1Files = "../../testdata/fig1/mesh.yaml,../../testdata/fig1/k8s_current.yaml,../../testdata/fig1/istio_current.yaml"

func TestInputsLoad(t *testing.T) {
	in := inputs{cfg: server.Config{
		Files:      fig1Files,
		K8sGoals:   "../../testdata/fig1/k8s_goals.csv",
		IstioGoals: "../../testdata/fig1/istio_goals_revised.csv",
		K8sOffer:   "fixed",
		IstioOffer: "soft",
	}}
	st, err := in.load()
	if err != nil {
		t.Fatal(err)
	}
	k8sParty, istioParty, err := st.FreshParties()
	if err != nil || k8sParty == nil || istioParty == nil {
		t.Fatalf("parties not built: %v", err)
	}
}

func TestInputsLoadErrors(t *testing.T) {
	if _, err := (&inputs{}).load(); err == nil {
		t.Fatal("missing -files must error")
	}
	in := inputs{cfg: server.Config{Files: "does-not-exist.yaml"}}
	if _, err := in.load(); err == nil {
		t.Fatal("missing file must error")
	}
	in = inputs{cfg: server.Config{Files: fig1Files, K8sOffer: "bogus"}}
	if _, err := in.load(); err == nil {
		t.Fatal("bad offer must error")
	}
}

func TestRunEnvelopeSucceeds(t *testing.T) {
	err := runEnvelope(context.Background(), []string{
		"-files", fig1Files,
		"-k8s-goals", "../../testdata/fig1/k8s_goals.csv",
		"-from", "k8s", "-to", "istio",
		"-english", "-leakage",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunCheckSucceeds(t *testing.T) {
	err := runCheck(context.Background(), []string{
		"-files", fig1Files,
		"-k8s-goals", "../../testdata/fig1/k8s_goals.csv",
		"-party", "k8s",
		"-istio-offer", "holes",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunReconcileSucceeds(t *testing.T) {
	err := runReconcile(context.Background(), []string{
		"-files", fig1Files,
		"-k8s-goals", "../../testdata/fig1/k8s_goals.csv",
		"-istio-goals", "../../testdata/fig1/istio_goals_revised.csv",
		"-k8s-offer", "soft", "-istio-offer", "soft",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunReconcileStrategyFlag(t *testing.T) {
	defer applyStrategy("auto")
	for _, strategy := range []string{"linear", "binary"} {
		err := runReconcile(context.Background(), []string{
			"-files", fig1Files,
			"-k8s-goals", "../../testdata/fig1/k8s_goals.csv",
			"-istio-goals", "../../testdata/fig1/istio_goals_revised.csv",
			"-k8s-offer", "soft", "-istio-offer", "soft",
			"-strategy", strategy,
		})
		if err != nil {
			t.Fatalf("-strategy %s: %v", strategy, err)
		}
	}
	if err := applyStrategy("bogus"); err == nil {
		t.Fatal("bad -strategy must error")
	}
}

func TestRunConformSucceeds(t *testing.T) {
	err := runConform(context.Background(), []string{
		"-files", fig1Files,
		"-k8s-goals", "../../testdata/fig1/k8s_goals.csv",
		"-istio-goals", "../../testdata/fig1/istio_goals_revised.csv",
		"-k8s-offer", "fixed", "-istio-offer", "soft",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunNegotiateSucceeds(t *testing.T) {
	err := runNegotiate(context.Background(), []string{
		"-files", fig1Files,
		"-k8s-goals", "../../testdata/fig1/k8s_goals.csv",
		"-istio-goals", "../../testdata/fig1/istio_goals_revised.csv",
		"-k8s-offer", "soft", "-istio-offer", "soft",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunEvalSucceeds(t *testing.T) {
	err := runEval(context.Background(), []string{
		"-files", fig1Files,
		"-src", "test-backend", "-dst", "test-frontend", "-port", "23",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := runEval(context.Background(), []string{"-files", fig1Files}); err == nil {
		t.Fatal("missing flow flags must error")
	}
}

func TestExtraPortsFlowIntoSystem(t *testing.T) {
	in := inputs{cfg: server.Config{
		Files: fig1Files,
		Ports: "9999",
	}}
	st, err := in.load()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Sys.HasPort(9999) {
		t.Fatal("-ports must extend the inventory")
	}
	_ = muppet.Flow{}
}

func TestVersionCommand(t *testing.T) {
	if code := runCtx(context.Background(), []string{"version"}); code != exitSat {
		t.Fatalf("version: exit %d", code)
	}
}

// captureRun runs runCtx with os.Stdout captured, returning what the
// command printed and its exit code.
func captureRun(t *testing.T, argv []string) (string, int) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	outc := make(chan string, 1)
	go func() {
		b, _ := io.ReadAll(r)
		outc <- string(b)
	}()
	code := runCtx(context.Background(), argv)
	w.Close()
	os.Stdout = old
	return <-outc, code
}

// TestClientModeMatchesLocal is the parity acceptance test: every
// workflow command routed through a running daemon (-addr) must print
// byte-identical output and exit with the same code as the local solve.
func TestClientModeMatchesLocal(t *testing.T) {
	st, err := server.Load(server.Config{
		Files:      fig1Files,
		K8sGoals:   "../../testdata/fig1/k8s_goals.csv",
		IstioGoals: "../../testdata/fig1/istio_goals_revised.csv",
		K8sOffer:   "soft",
		IstioOffer: "soft",
	})
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(st, server.Options{Concurrency: 2, QueueDepth: 8})
	defer s.Close()
	hs := httptest.NewServer(s)
	defer hs.Close()
	addr := strings.TrimPrefix(hs.URL, "http://")

	base := []string{
		"-files", fig1Files,
		"-k8s-goals", "../../testdata/fig1/k8s_goals.csv",
		"-istio-goals", "../../testdata/fig1/istio_goals_revised.csv",
		"-k8s-offer", "soft", "-istio-offer", "soft",
	}
	cases := [][]string{
		{"check", "-party", "k8s"},
		{"check", "-party", "istio"},
		{"envelope", "-english", "-leakage"},
		{"reconcile"},
		{"conform"},
		{"negotiate"},
	}
	for _, c := range cases {
		argv := append(append([]string{c[0]}, base...), c[1:]...)
		localOut, localCode := captureRun(t, argv)
		clientOut, clientCode := captureRun(t, append(argv, "-addr", addr))
		if clientCode != localCode {
			t.Errorf("%v: client exit %d, local exit %d", c, clientCode, localCode)
		}
		if clientOut != localOut {
			t.Errorf("%v: client output differs from local\n--- local ---\n%s\n--- client ---\n%s", c, localOut, clientOut)
		}
	}
}

func TestClientModeRejectsDaemonSideFlags(t *testing.T) {
	for _, argv := range [][]string{
		{"reconcile", "-files", fig1Files, "-addr", "127.0.0.1:1", "-portfolio", "2"},
		{"reconcile", "-files", fig1Files, "-addr", "127.0.0.1:1", "-strategy", "linear"},
		{"reconcile", "-files", fig1Files, "-addr", "127.0.0.1:1", "-v"},
	} {
		if code := runCtx(context.Background(), argv); code != exitInternal {
			t.Errorf("%v: exit %d, want %d", argv, code, exitInternal)
		}
	}
}

// TestClientTenantFlag pins the -tenant routing: naming the daemon's
// default tenant explicitly hits /t/default/{op} and must match the /v1
// output byte for byte; an unknown tenant is a daemon-side 404; and
// -tenant without -addr is rejected, since local solves take their
// bundle from -files.
func TestClientTenantFlag(t *testing.T) {
	st, err := server.Load(server.Config{
		Files:      fig1Files,
		K8sGoals:   "../../testdata/fig1/k8s_goals.csv",
		IstioGoals: "../../testdata/fig1/istio_goals_revised.csv",
		K8sOffer:   "soft",
		IstioOffer: "soft",
	})
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(st, server.Options{Concurrency: 2, QueueDepth: 8})
	defer s.Close()
	hs := httptest.NewServer(s)
	defer hs.Close()
	addr := strings.TrimPrefix(hs.URL, "http://")

	argv := []string{"check", "-party", "k8s", "-files", fig1Files, "-addr", addr}
	defOut, defCode := captureRun(t, argv)
	tenOut, tenCode := captureRun(t, append(argv, "-tenant", server.DefaultTenant))
	if tenCode != defCode || tenOut != defOut {
		t.Errorf("-tenant default: exit %d output %q, want exit %d output %q", tenCode, tenOut, defCode, defOut)
	}
	if code := runCtx(context.Background(), append(argv, "-tenant", "no-such-tenant")); code != exitInternal {
		t.Errorf("unknown tenant: exit %d, want %d", code, exitInternal)
	}
	if code := runCtx(context.Background(), []string{"check", "-files", fig1Files, "-tenant", "acme"}); code != exitInternal {
		t.Errorf("-tenant without -addr: exit %d, want %d", code, exitInternal)
	}
}

func TestRunCtxUsageExitCodes(t *testing.T) {
	if code := runCtx(context.Background(), nil); code != exitUsage {
		t.Fatalf("no command: exit %d, want %d", code, exitUsage)
	}
	if code := runCtx(context.Background(), []string{"bogus"}); code != exitUsage {
		t.Fatalf("unknown command: exit %d, want %d", code, exitUsage)
	}
	if code := runCtx(context.Background(), []string{"help"}); code != exitSat {
		t.Fatalf("help: exit %d, want %d", code, exitSat)
	}
}

// TestRunCtxCancelledIsIndeterminate pins the SIGINT wiring: run()
// translates the signal into context cancellation, and a cancelled
// context must surface as the indeterminate exit code, never as a
// fabricated UNSAT verdict.
func TestRunCtxCancelledIsIndeterminate(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // as if SIGINT had already arrived
	code := runCtx(ctx, []string{"reconcile",
		"-files", fig1Files,
		"-k8s-goals", "../../testdata/fig1/k8s_goals.csv",
		"-istio-goals", "../../testdata/fig1/istio_goals_revised.csv",
		"-k8s-offer", "soft", "-istio-offer", "soft",
	})
	if code != exitIndeterminate {
		t.Fatalf("cancelled reconcile: exit %d, want %d", code, exitIndeterminate)
	}
}

// TestRunCtxTimeoutIsIndeterminate is the acceptance criterion of the
// budget work: reconcile under an unmeetable -timeout exits
// indeterminate with a stop reason, while the same invocation without
// a timeout reconciles (TestRunReconcileSucceeds above).
func TestRunCtxTimeoutIsIndeterminate(t *testing.T) {
	code := runCtx(context.Background(), []string{"reconcile",
		"-timeout", "1ns",
		"-files", fig1Files,
		"-k8s-goals", "../../testdata/fig1/k8s_goals.csv",
		"-istio-goals", "../../testdata/fig1/istio_goals_revised.csv",
		"-k8s-offer", "soft", "-istio-offer", "soft",
	})
	if code != exitIndeterminate {
		t.Fatalf("1ns reconcile: exit %d, want %d", code, exitIndeterminate)
	}
}

func TestRunCtxRecoversPanics(t *testing.T) {
	orig := dispatchFn
	defer func() { dispatchFn = orig }()
	dispatchFn = func(context.Context, string, []string) error {
		panic("relational evaluator arity mismatch")
	}
	if code := runCtx(context.Background(), []string{"check"}); code != exitInternal {
		t.Fatalf("panicking command: exit %d, want %d", code, exitInternal)
	}
}

func TestStatusErrRoundTrip(t *testing.T) {
	var se statusErr
	if !errors.As(error(statusErr(exitUnsat)), &se) || int(se) != exitUnsat {
		t.Fatalf("statusErr did not round-trip: %v", se)
	}
	if statusErr(3).Error() != "exit status 3" {
		t.Fatalf("unexpected message %q", statusErr(3).Error())
	}
}
