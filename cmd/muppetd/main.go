// Command muppetd is the long-running mediation daemon: it loads one or
// many mesh/goal bundles, compiles each into an immutable system, and
// serves the paper's workflows over HTTP/JSON from a pool of workers
// drawing warm solver sessions out of per-tenant cache pools.
//
// Endpoints:
//
//	POST /v1/{op}              — workflow op against the default tenant
//	POST /t/{tenant}/{op}      — workflow op against a named tenant
//	GET  /v1/watch/{op}        — watch mode against the default tenant:
//	                             long-poll (?rev=N, 204 on timeout) or SSE
//	                             (?stream=1); each hot reload is diffed
//	                             and re-solved incrementally, one event
//	                             per revision
//	GET  /t/{tenant}/watch/{op} — watch mode against a named tenant
//	GET  /tenants              — registry, revisions, cache-pool accounting
//	POST /tenants/{id}/reload  — hot-reload one tenant (?force=1 to swap
//	                             even when its inputs are unchanged)
//	POST /fed/{op}             — federated negotiation peer protocol
//	                             (join, propose, envelope, install,
//	                             describe; enabled by -fed-party)
//	GET  /healthz              — liveness
//	GET  /readyz               — readiness (503 while draining)
//	GET  /metrics              — Prometheus text exposition
//
// where op is check (Alg. 1), envelope (Alg. 3), reconcile (Alg. 2),
// conform (Fig. 7), or negotiate (Fig. 9).
//
// Single-tenant mode (-files ...) is the degenerate case: the bundle is
// registered as the "default" tenant and /v1/ serves it exactly as
// before. Multi-tenant mode (-tenant-dir) scans a directory of
// <id>/tenant.yaml manifests; SIGHUP (or -tenant-rescan polling) rescans
// it, adding new tenants, hot-reloading changed ones, and removing
// vanished ones. Reloads are atomic swaps — in-flight requests finish on
// the revision they started with.
//
// Request bodies are JSON (see internal/server.Request); budgets travel
// in the X-Muppet-Timeout and X-Muppet-Max-Conflicts headers, capped by
// -max-timeout. -cache-budget-mb bounds idle warm-session memory across
// all tenants; -router composes solver pools per op. Overload is
// rejected with 429 + Retry-After. SIGINT or SIGTERM drains gracefully:
// admission stops, in-flight solves get -drain-grace to finish, then are
// cancelled and answered indeterminate.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"muppet"
	"muppet/internal/buildinfo"
	"muppet/internal/faultinject"
	"muppet/internal/server"
	"muppet/internal/target"
	"muppet/internal/tenant"
)

func main() {
	os.Exit(run(os.Args[1:], nil))
}

// run is the testable daemon body: parse flags, load state, serve until
// a signal, then drain. ready (optional) receives the bound address once
// the listener is up, so tests can use ":0" and discover the port.
func run(argv []string, ready func(addr string)) int {
	fs := flag.NewFlagSet("muppetd", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var cfg server.Config
	fs.StringVar(&cfg.Files, "files", "", "comma-separated YAML files (single-tenant mode)")
	fs.StringVar(&cfg.K8sGoals, "k8s-goals", "", "K8s goals CSV")
	fs.StringVar(&cfg.IstioGoals, "istio-goals", "", "Istio goals CSV")
	fs.StringVar(&cfg.K8sOffer, "k8s-offer", "fixed", "K8s offer: fixed|soft|holes")
	fs.StringVar(&cfg.IstioOffer, "istio-offer", "soft", "Istio offer: fixed|soft|holes")
	fs.StringVar(&cfg.Ports, "ports", "", "extra ports, comma-separated")
	tenantDir := fs.String("tenant-dir", "", "directory of <id>/tenant.yaml manifests to serve as tenants")
	tenantRescan := fs.Duration("tenant-rescan", 0, "poll -tenant-dir for changes this often (0 = SIGHUP/admin only)")
	cacheBudgetMB := fs.Int("cache-budget-mb", 0, "idle warm-cache memory budget across all tenants, MiB (0 = unlimited)")
	routerPath := fs.String("router", "", "solver-pool router YAML (default: every op on one warm-cache pool)")
	addr := fs.String("addr", "127.0.0.1:8337", "listen address")
	concurrency := fs.Int("concurrency", 0, "solver workers (0 = GOMAXPROCS)")
	queueDepth := fs.Int("queue-depth", 0, "admission queue bound (0 = 2×concurrency)")
	maxTimeout := fs.Duration("max-timeout", 30*time.Second,
		"cap on per-request deadlines, also the default budget (0 = unbounded)")
	drainGrace := fs.Duration("drain-grace", 5*time.Second,
		"how long in-flight solves may run after a shutdown signal before being cancelled")
	watchPoll := fs.Duration("watch-poll-timeout", server.DefaultWatchPollTimeout,
		"watch long-poll timeout before an empty 204 re-poll hint")
	watchMaxEvents := fs.Int("watch-max-events", 0,
		"cap on events per SSE watcher before its stream is closed (0 = unlimited)")
	portfolio := fs.Int("portfolio", 0, "race N diversified solver configurations per solve (0/1 = off)")
	strategy := fs.String("strategy", "auto", "minimal-edit distance search: auto|linear|binary")
	fedParty := fs.String("fed-party", "",
		"serve the federated negotiation peer protocol under /fed/ for this party: k8s|istio (requires -files)")
	faultSpec := fs.String("fault-spec", "",
		"chaos-testing fault injection, e.g. latency=50ms:0.3,error=0.1,unavail=0.05:2,drop=0.05,slow=0.1 (default off)")
	faultSeed := fs.Int64("fault-seed", 1, "deterministic seed for -fault-spec decisions")
	pprofAddr := fs.String("pprof-addr", "",
		"serve net/http/pprof on this separate address, e.g. 127.0.0.1:6060 (default off)")
	version := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(argv); err != nil {
		return server.CodeUsage
	}
	if *version {
		fmt.Println("muppetd", buildinfo.Version())
		return 0
	}
	if cfg.Files == "" && *tenantDir == "" {
		fmt.Fprintln(os.Stderr, "muppetd: -files or -tenant-dir is required")
		return server.CodeUsage
	}
	switch *fedParty {
	case "", "k8s", "istio":
	default:
		fmt.Fprintf(os.Stderr, "muppetd: bad -fed-party %q (want k8s or istio)\n", *fedParty)
		return server.CodeUsage
	}
	if *fedParty != "" && cfg.Files == "" {
		fmt.Fprintln(os.Stderr, "muppetd: -fed-party requires -files (the peer serves the default tenant)")
		return server.CodeUsage
	}
	faults, err := faultinject.Parse(*faultSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "muppetd:", err)
		return server.CodeUsage
	}
	// Strategy and portfolio width are process-wide solver configuration,
	// so they are daemon-startup knobs, never per-request ones.
	st, ok := target.ParseStrategy(*strategy)
	if !ok {
		fmt.Fprintf(os.Stderr, "muppetd: bad -strategy %q (want auto|linear|binary)\n", *strategy)
		return server.CodeUsage
	}
	target.SetDefaultStrategy(st)
	muppet.SetPortfolioWorkers(*portfolio)

	router := tenant.DefaultRouter()
	if *routerPath != "" {
		var err error
		if router, err = tenant.LoadRouter(*routerPath); err != nil {
			fmt.Fprintln(os.Stderr, "muppetd:", err)
			return server.CodeInternal
		}
	}

	// Populate the registry: the -files bundle (if any) is the static
	// "default" tenant; -tenant-dir tenants are discovered and kept in
	// sync by rescans.
	reg := tenant.NewRegistry[*server.State](tenant.NewLedger(int64(*cacheBudgetMB) << 20))
	if cfg.Files != "" {
		if _, err := reg.Add(server.DefaultTenant, server.LoaderFromConfig(cfg)); err != nil {
			fmt.Fprintln(os.Stderr, "muppetd:", err)
			return server.CodeInternal
		}
	}
	if *tenantDir != "" {
		reg.SetDiscover(server.DirDiscover(*tenantDir))
		rep, err := reg.Rescan()
		if err != nil {
			fmt.Fprintln(os.Stderr, "muppetd:", err)
			return server.CodeInternal
		}
		for id, ferr := range rep.Failed {
			// A broken tenant at startup is fatal: better to refuse to start
			// than to silently serve a subset of the fleet.
			fmt.Fprintf(os.Stderr, "muppetd: tenant %s: %v\n", id, ferr)
			return server.CodeInternal
		}
		log.Printf("muppetd: loaded %d tenants from %s", len(rep.Added), *tenantDir)
	}
	if reg.Len() == 0 {
		fmt.Fprintf(os.Stderr, "muppetd: no tenants found in %s\n", *tenantDir)
		return server.CodeInternal
	}

	s := server.NewMulti(reg, server.Options{
		Concurrency:      *concurrency,
		QueueDepth:       *queueDepth,
		MaxTimeout:       *maxTimeout,
		Router:           router,
		FedParty:         *fedParty,
		WatchPollTimeout: *watchPoll,
		WatchMaxEvents:   *watchMaxEvents,
	})
	if *fedParty != "" {
		log.Printf("muppetd: serving federated peer protocol for party %s under /fed/", *fedParty)
	}
	var handler http.Handler = s
	if faults.Active() {
		log.Printf("muppetd: CHAOS: injecting faults (%s, seed %d)", faults, *faultSeed)
		handler = faults.Middleware(*faultSeed, s)
	}
	// The profiler gets its own listener and mux, never the serving one:
	// pprof handlers must stay off the request port so they can be bound
	// to loopback (or a firewalled port) independently of -addr.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "muppetd:", err)
			return server.CodeInternal
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		log.Printf("muppetd: pprof on http://%s/debug/pprof/", pln.Addr())
		go func() {
			if err := http.Serve(pln, pmux); err != nil && !errors.Is(err, net.ErrClosed) {
				log.Printf("muppetd: pprof server: %v", err)
			}
		}()
		defer pln.Close()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "muppetd:", err)
		return server.CodeInternal
	}
	log.Printf("muppetd %s serving %d tenants on http://%s", buildinfo.Version(), reg.Len(), ln.Addr())
	if ready != nil {
		ready(ln.Addr().String())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Rescan triggers: SIGHUP always; a -tenant-rescan ticker optionally.
	// Rescans are serialized inside the registry, so overlapping triggers
	// simply coalesce.
	rescan := func(reason string) {
		rep, err := reg.Rescan()
		if err != nil {
			log.Printf("muppetd: rescan (%s): %v", reason, err)
			return
		}
		if len(rep.Added)+len(rep.Reloaded)+len(rep.Removed)+len(rep.Failed) > 0 {
			log.Printf("muppetd: rescan (%s): added=%v reloaded=%v removed=%v failed=%d",
				reason, rep.Added, rep.Reloaded, rep.Removed, len(rep.Failed))
			for id, ferr := range rep.Failed {
				log.Printf("muppetd: tenant %s: %v", id, ferr)
			}
		}
	}
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	rescanDone := make(chan struct{})
	go func() {
		defer close(rescanDone)
		var tick <-chan time.Time
		if *tenantRescan > 0 {
			ticker := time.NewTicker(*tenantRescan)
			defer ticker.Stop()
			tick = ticker.C
		}
		for {
			select {
			case <-ctx.Done():
				return
			case <-hup:
				rescan("SIGHUP")
			case <-tick:
				rescan("poll")
			}
		}
	}()

	hs := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "muppetd:", err)
		return server.CodeInternal
	case <-ctx.Done():
	}
	stop() // a second signal now kills the process the default way
	<-rescanDone

	log.Printf("muppetd: draining (grace %v)", *drainGrace)
	s.Drain()
	// After the grace period, cancel in-flight solves: they finish
	// immediately with structured indeterminate responses, so Shutdown
	// below completes without tearing any response mid-write.
	hammer := time.AfterFunc(*drainGrace, s.CancelSolves)
	defer hammer.Stop()
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainGrace+10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		log.Printf("muppetd: forced shutdown: %v", err)
		hs.Close()
	}
	s.Close()
	log.Printf("muppetd: drained")
	return 0
}
