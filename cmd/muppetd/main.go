// Command muppetd is the long-running mediation daemon: it loads a
// mesh/goal bundle once, compiles the system, and serves the paper's
// workflows over HTTP/JSON from a pool of workers with warm solver
// sessions.
//
// Endpoints:
//
//	POST /v1/check      — local consistency of one party's offer (Alg. 1)
//	POST /v1/envelope   — compute E_{A→B} (Alg. 3)
//	POST /v1/reconcile  — reconcile all offers (Alg. 2)
//	POST /v1/conform    — the conformance workflow (Fig. 7)
//	POST /v1/negotiate  — the negotiation workflow (Fig. 9)
//	GET  /healthz       — liveness
//	GET  /readyz        — readiness (503 while draining)
//	GET  /metrics       — Prometheus text exposition
//
// Request bodies are JSON (see internal/server.Request); budgets travel
// in the X-Muppet-Timeout and X-Muppet-Max-Conflicts headers, capped by
// -max-timeout. Overload is rejected with 429 + Retry-After. SIGINT or
// SIGTERM drains gracefully: admission stops, in-flight solves get
// -drain-grace to finish, then are cancelled and answered indeterminate.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"muppet"
	"muppet/internal/buildinfo"
	"muppet/internal/server"
	"muppet/internal/target"
)

func main() {
	os.Exit(run(os.Args[1:], nil))
}

// run is the testable daemon body: parse flags, load state, serve until
// a signal, then drain. ready (optional) receives the bound address once
// the listener is up, so tests can use ":0" and discover the port.
func run(argv []string, ready func(addr string)) int {
	fs := flag.NewFlagSet("muppetd", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var cfg server.Config
	fs.StringVar(&cfg.Files, "files", "", "comma-separated YAML files (required)")
	fs.StringVar(&cfg.K8sGoals, "k8s-goals", "", "K8s goals CSV")
	fs.StringVar(&cfg.IstioGoals, "istio-goals", "", "Istio goals CSV")
	fs.StringVar(&cfg.K8sOffer, "k8s-offer", "fixed", "K8s offer: fixed|soft|holes")
	fs.StringVar(&cfg.IstioOffer, "istio-offer", "soft", "Istio offer: fixed|soft|holes")
	fs.StringVar(&cfg.Ports, "ports", "", "extra ports, comma-separated")
	addr := fs.String("addr", "127.0.0.1:8337", "listen address")
	concurrency := fs.Int("concurrency", 0, "solver workers (0 = GOMAXPROCS)")
	queueDepth := fs.Int("queue-depth", 0, "admission queue bound (0 = 2×concurrency)")
	maxTimeout := fs.Duration("max-timeout", 30*time.Second,
		"cap on per-request deadlines, also the default budget (0 = unbounded)")
	drainGrace := fs.Duration("drain-grace", 5*time.Second,
		"how long in-flight solves may run after a shutdown signal before being cancelled")
	portfolio := fs.Int("portfolio", 0, "race N diversified solver configurations per solve (0/1 = off)")
	strategy := fs.String("strategy", "auto", "minimal-edit distance search: auto|linear|binary")
	version := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(argv); err != nil {
		return server.CodeUsage
	}
	if *version {
		fmt.Println("muppetd", buildinfo.Version())
		return 0
	}
	// Strategy and portfolio width are process-wide solver configuration,
	// so they are daemon-startup knobs, never per-request ones.
	st, ok := target.ParseStrategy(*strategy)
	if !ok {
		fmt.Fprintf(os.Stderr, "muppetd: bad -strategy %q (want auto|linear|binary)\n", *strategy)
		return server.CodeUsage
	}
	target.SetDefaultStrategy(st)
	muppet.SetPortfolioWorkers(*portfolio)

	state, err := server.Load(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "muppetd:", err)
		return server.CodeInternal
	}
	s := server.New(state, server.Options{
		Concurrency: *concurrency,
		QueueDepth:  *queueDepth,
		MaxTimeout:  *maxTimeout,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "muppetd:", err)
		return server.CodeInternal
	}
	log.Printf("muppetd %s serving on http://%s", buildinfo.Version(), ln.Addr())
	if ready != nil {
		ready(ln.Addr().String())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hs := &http.Server{Handler: s}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "muppetd:", err)
		return server.CodeInternal
	case <-ctx.Done():
	}
	stop() // a second signal now kills the process the default way

	log.Printf("muppetd: draining (grace %v)", *drainGrace)
	s.Drain()
	// After the grace period, cancel in-flight solves: they finish
	// immediately with structured indeterminate responses, so Shutdown
	// below completes without tearing any response mid-write.
	hammer := time.AfterFunc(*drainGrace, s.CancelSolves)
	defer hammer.Stop()
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainGrace+10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		log.Printf("muppetd: forced shutdown: %v", err)
		hs.Close()
	}
	s.Close()
	log.Printf("muppetd: drained")
	return 0
}
