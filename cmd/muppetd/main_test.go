package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"muppet/internal/server"
)

const fig1Dir = "../../testdata/fig1/"

func fig1Args(extra ...string) []string {
	args := []string{
		"-addr", "127.0.0.1:0",
		"-files", fig1Dir + "mesh.yaml," + fig1Dir + "k8s_current.yaml," + fig1Dir + "istio_current.yaml",
		"-k8s-goals", fig1Dir + "k8s_goals.csv",
		"-istio-goals", fig1Dir + "istio_goals_revised.csv",
		"-k8s-offer", "soft",
		"-istio-offer", "soft",
	}
	return append(args, extra...)
}

// startDaemon runs the daemon in-process on an ephemeral port with the
// fig1 bundle and waits until it reports ready. The returned channel
// yields run's exit code.
func startDaemon(t *testing.T, extra ...string) (string, chan int) {
	t.Helper()
	return startDaemonArgs(t, fig1Args(extra...))
}

// startDaemonArgs is startDaemon with fully caller-supplied argv.
func startDaemonArgs(t *testing.T, args []string) (string, chan int) {
	t.Helper()
	readyCh := make(chan string, 1)
	exit := make(chan int, 1)
	go func() {
		exit <- run(args, func(addr string) { readyCh <- addr })
	}()
	var addr string
	select {
	case addr = <-readyCh:
	case code := <-exit:
		t.Fatalf("daemon exited %d before becoming ready", code)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never became ready")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		res, err := http.Get("http://" + addr + "/readyz")
		if err == nil {
			res.Body.Close()
			if res.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon at %s never ready: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	return addr, exit
}

func TestVersionFlag(t *testing.T) {
	if code := run([]string{"-version"}, nil); code != 0 {
		t.Fatalf("-version: exit %d", code)
	}
}

func TestBadInvocations(t *testing.T) {
	if code := run([]string{"-no-such-flag"}, nil); code != server.CodeUsage {
		t.Fatalf("bad flag: exit %d, want %d", code, server.CodeUsage)
	}
	if code := run([]string{"-strategy", "bogus"}, nil); code != server.CodeUsage {
		t.Fatalf("bad strategy: exit %d, want %d", code, server.CodeUsage)
	}
	if code := run([]string{"-files", "does-not-exist.yaml"}, nil); code != server.CodeInternal {
		t.Fatalf("bad files: exit %d, want %d", code, server.CodeInternal)
	}
	if code := run([]string{}, nil); code != server.CodeUsage {
		t.Fatalf("no inputs: exit %d, want %d", code, server.CodeUsage)
	}
	if code := run([]string{"-tenant-dir", t.TempDir()}, nil); code != server.CodeInternal {
		t.Fatalf("empty tenant dir: exit %d, want %d", code, server.CodeInternal)
	}
	if code := run(fig1Args("-router", "does-not-exist.yaml"), nil); code != server.CodeInternal {
		t.Fatalf("bad router: exit %d, want %d", code, server.CodeInternal)
	}
	if code := run(fig1Args("-addr", "host.invalid:0"), nil); code != server.CodeInternal {
		t.Fatalf("unbindable address: exit %d, want %d", code, server.CodeInternal)
	}
}

// TestSmoke is the CI smoke sequence in miniature: start the daemon,
// probe /healthz, run one check, shut down cleanly with SIGINT.
func TestSmoke(t *testing.T) {
	addr, exit := startDaemon(t)
	res, err := http.Get("http://" + addr + "/healthz")
	if err != nil || res.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %v %v", res, err)
	}
	res.Body.Close()

	body := bytes.NewReader([]byte(`{"party":"k8s"}`))
	res, err = http.Post("http://"+addr+"/v1/check", "application/json", body)
	if err != nil || res.StatusCode != http.StatusOK {
		t.Fatalf("check: %v %v", res, err)
	}
	var out server.Response
	if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
		t.Fatalf("check response: %v", err)
	}
	res.Body.Close()
	if out.Code != server.CodeSat || out.Output == "" {
		t.Fatalf("check verdict: code %d output %q", out.Code, out.Output)
	}

	syscall.Kill(os.Getpid(), syscall.SIGINT)
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("shutdown exit %d", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// writeTenant materializes `<dir>/<id>/tenant.yaml` plus the fig1 input
// bundle it names, with a per-tenant K8s goals CSV banning the given port.
func writeTenant(t *testing.T, dir, id string, banPort int) {
	t.Helper()
	td := filepath.Join(dir, id)
	if err := os.MkdirAll(td, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"mesh.yaml", "k8s_current.yaml", "istio_current.yaml", "istio_goals_revised.csv"} {
		data, err := os.ReadFile(fig1Dir + f)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(td, f), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	goals := fmt.Sprintf("port,perm,selector\n%d,DENY,*\n", banPort)
	if err := os.WriteFile(filepath.Join(td, "k8s_goals.csv"), []byte(goals), 0o644); err != nil {
		t.Fatal(err)
	}
	manifest := `files:
  - mesh.yaml
  - k8s_current.yaml
  - istio_current.yaml
k8s-goals: k8s_goals.csv
istio-goals: istio_goals_revised.csv
k8s-offer: soft
istio-offer: soft
`
	if err := os.WriteFile(filepath.Join(td, "tenant.yaml"), []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}
}

func checkTenant(t *testing.T, addr, id string) *server.Response {
	t.Helper()
	res, err := http.Post("http://"+addr+"/t/"+id+"/check", "application/json",
		bytes.NewReader([]byte(`{"party":"k8s"}`)))
	if err != nil {
		t.Fatalf("check %s: %v", id, err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("check %s: HTTP %d", id, res.StatusCode)
	}
	var out server.Response
	if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
		t.Fatalf("check %s: torn response: %v", id, err)
	}
	if out.Code != server.CodeSat || out.Output == "" {
		t.Fatalf("check %s: code %d output %q", id, out.Code, out.Output)
	}
	return &out
}

// TestTenantDirAndSighupRescan boots the daemon on a -tenant-dir with two
// tenants, serves both, then drops a third tenant into the directory and
// delivers SIGHUP: the rescan must pick it up without a restart, and
// removing it plus another SIGHUP must retire it.
func TestTenantDirAndSighupRescan(t *testing.T) {
	dir := t.TempDir()
	writeTenant(t, dir, "alpha", 23)
	writeTenant(t, dir, "beta", 24)
	addr, exit := startDaemonArgs(t, []string{"-addr", "127.0.0.1:0", "-tenant-dir", dir, "-cache-budget-mb", "64"})

	checkTenant(t, addr, "alpha")
	checkTenant(t, addr, "beta")

	// Unknown tenants and the absent default tenant both 404.
	for _, path := range []string{"/t/gamma/check", "/v1/check"} {
		res, err := http.Post("http://"+addr+path, "application/json", bytes.NewReader([]byte("{}")))
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: HTTP %d, want 404", path, res.StatusCode)
		}
	}

	tenants := func() map[string]server.TenantInfo {
		res, err := http.Get("http://" + addr + "/tenants")
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		var reply server.TenantsReply
		if err := json.NewDecoder(res.Body).Decode(&reply); err != nil {
			t.Fatal(err)
		}
		byID := make(map[string]server.TenantInfo, len(reply.Tenants))
		for _, ti := range reply.Tenants {
			byID[ti.ID] = ti
		}
		return byID
	}
	if got := tenants(); len(got) != 2 {
		t.Fatalf("tenants before rescan: %v", got)
	}

	// Drop in a third tenant and rescan via SIGHUP (the daemon runs
	// in-process, so signalling ourselves reaches its handler).
	writeTenant(t, dir, "gamma", 25)
	syscall.Kill(os.Getpid(), syscall.SIGHUP)
	deadline := time.Now().Add(20 * time.Second)
	for {
		if _, ok := tenants()["gamma"]; ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("SIGHUP rescan never added gamma")
		}
		time.Sleep(20 * time.Millisecond)
	}
	checkTenant(t, addr, "gamma")

	// Remove it again; the next SIGHUP retires it.
	if err := os.RemoveAll(filepath.Join(dir, "gamma")); err != nil {
		t.Fatal(err)
	}
	syscall.Kill(os.Getpid(), syscall.SIGHUP)
	for {
		if _, ok := tenants()["gamma"]; !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("SIGHUP rescan never removed gamma")
		}
		time.Sleep(20 * time.Millisecond)
	}
	checkTenant(t, addr, "alpha")

	syscall.Kill(os.Getpid(), syscall.SIGINT)
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("shutdown exit %d", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// TestSigtermMidRequestNeverTears sends SIGTERM while concurrent clients
// are mid-request and asserts every response the daemon produced is
// whole: a 200 with parseable JSON carrying a complete verdict (sat or
// structured indeterminate), or a clean admission-level refusal
// (429/503), or a connection-level error once the listener is gone —
// never a torn body. Run under -race this also checks the drain path for
// data races.
func TestSigtermMidRequestNeverTears(t *testing.T) {
	addr, exit := startDaemon(t, "-concurrency", "2", "-queue-depth", "8", "-drain-grace", "2s")

	var (
		wg        sync.WaitGroup
		served    atomic.Int64
		signalled atomic.Bool
		stopAll   = make(chan struct{})
	)
	errs := make(chan error, 64)
	ops := []string{"check", "reconcile", "negotiate"}
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopAll:
					return
				default:
				}
				op := ops[(c+i)%len(ops)]
				res, err := http.Post("http://"+addr+"/v1/"+op, "application/json", bytes.NewReader([]byte("{}")))
				if err != nil {
					if !signalled.Load() {
						errs <- fmt.Errorf("client %d: transport error before shutdown: %v", c, err)
					}
					return // listener closed during drain: a clean end
				}
				switch res.StatusCode {
				case http.StatusOK:
					var out server.Response
					if derr := json.NewDecoder(res.Body).Decode(&out); derr != nil {
						errs <- fmt.Errorf("client %d %s: torn response: %v", c, op, derr)
						res.Body.Close()
						return
					}
					if out.Code != server.CodeSat && out.Code != server.CodeUnsat && out.Code != server.CodeIndeterminate {
						errs <- fmt.Errorf("client %d %s: verdict code %d", c, op, out.Code)
					}
					if out.Output == "" {
						errs <- fmt.Errorf("client %d %s: empty output", c, op)
					}
					served.Add(1)
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					// Clean refusals; during drain these are expected.
					if res.StatusCode == http.StatusServiceUnavailable && !signalled.Load() {
						errs <- fmt.Errorf("client %d: 503 before shutdown", c)
					}
				default:
					errs <- fmt.Errorf("client %d %s: HTTP %d", c, op, res.StatusCode)
				}
				res.Body.Close()
			}
		}(c)
	}

	// Let the clients get some real verdicts, then pull the trigger while
	// requests are still in flight.
	deadline := time.Now().Add(20 * time.Second)
	for served.Load() < 4 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if served.Load() == 0 {
		t.Fatal("no requests served before signal")
	}
	signalled.Store(true)
	syscall.Kill(os.Getpid(), syscall.SIGTERM)

	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("drain exit %d", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain")
	}
	close(stopAll)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
