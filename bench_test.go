// Benchmark harness regenerating every figure of the paper's evaluation
// plus the Sec. 5 timing claim. See EXPERIMENTS.md for the recorded
// paper-vs-measured comparison. Run with:
//
//	go test -bench=. -benchmem .
package muppet_test

import (
	"context"
	"fmt"
	"testing"

	"muppet"
	"muppet/internal/boolcirc"
	"muppet/internal/encode"
	"muppet/internal/envelope"
	"muppet/internal/relational"
	"muppet/internal/sat"
	tenantpool "muppet/internal/tenant"
)

// walkthrough loads the Sec. 3 / Fig. 1 scenario.
type walkthrough struct {
	sys      *muppet.System
	bundle   *muppet.Bundle
	k8sGoals []muppet.K8sGoal
	strict   []muppet.IstioGoal
	relaxed  []muppet.IstioGoal
}

func loadWalkthrough(b testing.TB) *walkthrough {
	b.Helper()
	bundle, err := muppet.LoadFiles(
		"testdata/fig1/mesh.yaml",
		"testdata/fig1/k8s_current.yaml",
		"testdata/fig1/istio_current.yaml",
	)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := muppet.NewSystem(bundle.Mesh, bundle.K8s.Policies, bundle.Istio.Policies,
		[]int{23, 24, 25, 26, 10000, 12000, 14000, 16000})
	if err != nil {
		b.Fatal(err)
	}
	w := &walkthrough{sys: sys, bundle: bundle}
	if w.k8sGoals, err = muppet.LoadK8sGoals("testdata/fig1/k8s_goals.csv"); err != nil {
		b.Fatal(err)
	}
	if w.strict, err = muppet.LoadIstioGoals("testdata/fig1/istio_goals.csv"); err != nil {
		b.Fatal(err)
	}
	if w.relaxed, err = muppet.LoadIstioGoals("testdata/fig1/istio_goals_revised.csv"); err != nil {
		b.Fatal(err)
	}
	return w
}

func (w *walkthrough) parties(b testing.TB, istioGoals []muppet.IstioGoal, k8sOffer, istioOffer muppet.Offer) (*muppet.Party, *muppet.Party) {
	b.Helper()
	k8sParty, _, err := muppet.NewK8sParty(w.sys, w.bundle.K8s, k8sOffer, w.k8sGoals)
	if err != nil {
		b.Fatal(err)
	}
	istioParty, _, err := muppet.NewIstioParty(w.sys, w.bundle.Istio, istioOffer, istioGoals)
	if err != nil {
		b.Fatal(err)
	}
	return k8sParty, istioParty
}

// BenchmarkFig5Envelope regenerates the paper's Figure 5: computing
// E_{K8s→Istio} for the port-23 ban against the current K8s configuration.
func BenchmarkFig5Envelope(b *testing.B) {
	w := loadWalkthrough(b)
	k8sParty, istioParty := w.parties(b, nil, muppet.Offer{}, muppet.AllSoft())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := muppet.ComputeEnvelope(w.sys, istioParty, []*muppet.Party{k8sParty})
		if env.Trivial() {
			b.Fatal("Fig. 5 envelope must be non-trivial")
		}
	}
}

// BenchmarkFig6Monolithic regenerates the Figure 6 baseline: one-shot
// synthesis over the union of conflicting goals, which fails (Sec. 2).
func BenchmarkFig6Monolithic(b *testing.B) {
	w := loadWalkthrough(b)
	k8sParty, istioParty := w.parties(b, w.strict, muppet.AllHoles(), muppet.AllHoles())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := muppet.SynthesizeMonolithic(w.sys, []*muppet.Party{k8sParty, istioParty})
		if res.OK {
			b.Fatal("monolithic baseline must fail on the conflict")
		}
	}
}

// BenchmarkAlg1LocalConsistency regenerates Algorithm 1 on the provider's
// offer.
func BenchmarkAlg1LocalConsistency(b *testing.B) {
	w := loadWalkthrough(b)
	k8sParty, istioParty := w.parties(b, nil, muppet.Offer{}, muppet.AllHoles())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := muppet.LocalConsistency(w.sys, k8sParty, []*muppet.Party{istioParty})
		if !res.OK {
			b.Fatal("provider must be consistent")
		}
	}
}

// BenchmarkAlg2Reconcile regenerates Algorithm 2 on the reconcilable
// (Fig. 4) goal pair.
func BenchmarkAlg2Reconcile(b *testing.B) {
	w := loadWalkthrough(b)
	k8sParty, istioParty := w.parties(b, w.relaxed, muppet.AllSoft(), muppet.AllSoft())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := muppet.Reconcile(w.sys, []*muppet.Party{k8sParty, istioParty})
		if !res.OK {
			b.Fatal("Fig. 4 goals must reconcile")
		}
	}
}

// BenchmarkFig7Conformance regenerates the Figure 7 workflow end to end.
func BenchmarkFig7Conformance(b *testing.B) {
	w := loadWalkthrough(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The workflow adopts configurations on success, so each
		// iteration needs fresh parties; their construction (goal
		// compilation + offer binding) is excluded from the timing.
		b.StopTimer()
		provider, tenant := w.parties(b, w.relaxed, muppet.Offer{}, muppet.AllSoft())
		b.StartTimer()
		out := muppet.RunConformance(w.sys, provider, tenant)
		if !out.Reconciled {
			b.Fatal("conformance must succeed")
		}
	}
}

// BenchmarkFig8MinimalEdit regenerates the Figure 8 revision aid: minimal
// edit of the tenant's offer against the received envelope plus its goals.
func BenchmarkFig8MinimalEdit(b *testing.B) {
	w := loadWalkthrough(b)
	k8sParty, istioParty := w.parties(b, w.relaxed, muppet.Offer{}, muppet.AllSoft())
	env := muppet.ComputeEnvelope(w.sys, istioParty, []*muppet.Party{k8sParty})
	constraints := append([]relational.Formula{env.Formula()}, istioParty.GoalFormulas()...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := muppet.MinimalEdit(w.sys, istioParty, constraints, k8sParty)
		if !res.OK {
			b.Fatal("minimal edit must exist")
		}
	}
}

// fig9Parties builds the Figure 9 cast: the pushed ban, a flexible tenant.
func fig9Parties(b testing.TB, w *walkthrough) (*muppet.Party, *muppet.Party) {
	b.Helper()
	banned := &muppet.K8sConfig{Policies: []*muppet.NetworkPolicy{{
		Name:             "cluster-default",
		IngressDenyPorts: []int{23},
	}}}
	k8sParty, _, err := muppet.NewK8sParty(w.sys, banned, muppet.Offer{}, w.k8sGoals)
	if err != nil {
		b.Fatal(err)
	}
	istioParty, _, err := muppet.NewIstioParty(w.sys, w.bundle.Istio, muppet.AllSoft(), w.relaxed)
	if err != nil {
		b.Fatal(err)
	}
	return k8sParty, istioParty
}

// BenchmarkFig9Negotiation regenerates the Figure 9 workflow: the pushed
// ban, a flexible tenant, round-robin to reconciliation. The negotiations
// are served by one long-lived SolveCache — the mediator deployment of
// Sec. 5, where successive runs (and the rounds within each run) reuse
// live solving sessions.
func BenchmarkFig9Negotiation(b *testing.B) {
	w := loadWalkthrough(b)
	cache := muppet.NewSolveCache()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Negotiation adopts configurations as it converges, so each
		// iteration needs fresh parties; their construction is excluded
		// from the timing so the solver workflow is measured in isolation.
		b.StopTimer()
		k8sParty, istioParty := fig9Parties(b, w)
		b.StartTimer()
		out := muppet.NewNegotiation(w.sys, k8sParty, istioParty).UseCache(cache).Run()
		if !out.Reconciled {
			b.Fatal("negotiation must succeed")
		}
	}
	reportReuse(b, cache.Stats())
}

// BenchmarkFig9NegotiationCold is the same workflow with every negotiation
// building its sessions from scratch (each run's private cache still
// shares sessions between its own rounds).
func BenchmarkFig9NegotiationCold(b *testing.B) {
	w := loadWalkthrough(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		k8sParty, istioParty := fig9Parties(b, w)
		b.StartTimer()
		out := muppet.NewNegotiation(w.sys, k8sParty, istioParty).Run()
		if !out.Reconciled {
			b.Fatal("negotiation must succeed")
		}
	}
}

// BenchmarkScalingSweep reproduces the Sec. 5 claim ("all queries made in
// modest scenarios … finish in under 1 second") across scenario sizes: for
// each size, the three query kinds the workflows issue — local
// consistency, envelope computation, and reconciliation — are timed
// separately. ns/op per sub-benchmark is the per-query latency.
func BenchmarkScalingSweep(b *testing.B) {
	sizes := []struct {
		services, flows, bans int
	}{
		{3, 4, 1},
		{6, 6, 1},
		{12, 12, 2},
		{24, 24, 2},
	}
	for _, size := range sizes {
		sc := muppet.GenerateScenario(muppet.ScenarioParams{
			Services:        size.services,
			PortsPerService: 2,
			Flows:           size.flows,
			BannedPorts:     size.bans,
			Seed:            42,
		})
		sys, err := sc.System()
		if err != nil {
			b.Fatal(err)
		}
		mk := func(tb testing.TB) (*muppet.Party, *muppet.Party) {
			k8sParty, _, err := muppet.NewK8sParty(sys, sc.K8sCurrent, muppet.AllSoft(), sc.K8sGoals)
			if err != nil {
				tb.Fatal(err)
			}
			istioParty, _, err := muppet.NewIstioParty(sys, sc.IstioCurrent, muppet.AllSoft(), sc.IstioRelaxed)
			if err != nil {
				tb.Fatal(err)
			}
			return k8sParty, istioParty
		}
		prefix := fmt.Sprintf("services=%d", size.services)
		// Party construction (goal compilation + offer expansion) is a
		// distinct cost from solving; it gets its own sub-benchmark and is
		// hoisted out of the solve timings (none of the three query kinds
		// mutates the parties).
		b.Run(prefix+"/setup", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mk(b)
			}
		})
		k8sParty, istioParty := mk(b)
		b.Run(prefix+"/consistency", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if res := muppet.LocalConsistency(sys, k8sParty, []*muppet.Party{istioParty}); !res.OK {
					b.Fatal("must be consistent")
				}
			}
		})
		b.Run(prefix+"/envelope", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if env := muppet.ComputeEnvelope(sys, istioParty, []*muppet.Party{k8sParty}); env.Trivial() {
					b.Fatal("envelope must be non-trivial")
				}
			}
		})
		b.Run(prefix+"/reconcile", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if res := muppet.Reconcile(sys, []*muppet.Party{k8sParty, istioParty}); !res.OK {
					b.Fatal("must reconcile")
				}
			}
		})
		// Warm variants serve every iteration from one live SolveCache
		// session — the repeated-query pattern of the negotiation and
		// conformance workflows.
		b.Run(prefix+"/consistency-warm", func(b *testing.B) {
			cache := muppet.NewSolveCache()
			ctx := context.Background()
			// Prime outside the timer: without this, b.N=1 runs (the larger
			// sizes) time the cold session build and report it as "warm".
			if res := cache.LocalConsistencyCtx(ctx, sys, k8sParty, []*muppet.Party{istioParty}, muppet.Budget{}); !res.OK {
				b.Fatal("must be consistent")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if res := cache.LocalConsistencyCtx(ctx, sys, k8sParty, []*muppet.Party{istioParty}, muppet.Budget{}); !res.OK {
					b.Fatal("must be consistent")
				}
			}
			reportReuse(b, cache.Stats())
		})
		b.Run(prefix+"/reconcile-warm", func(b *testing.B) {
			cache := muppet.NewSolveCache()
			ctx := context.Background()
			// Prime outside the timer (see consistency-warm).
			if res := cache.ReconcileCtx(ctx, sys, []*muppet.Party{k8sParty, istioParty}, muppet.Budget{}); !res.OK {
				b.Fatal("must reconcile")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if res := cache.ReconcileCtx(ctx, sys, []*muppet.Party{k8sParty, istioParty}, muppet.Budget{}); !res.OK {
					b.Fatal("must reconcile")
				}
			}
			reportReuse(b, cache.Stats())
		})
	}
}

// reportReuse surfaces SolveCache effectiveness and encoding sizes as
// benchmark metrics, so BENCH_<date>.json archives how big the live clause
// databases were and how much preprocessing removed.
func reportReuse(b *testing.B, st muppet.ReuseStats) {
	b.ReportMetric(float64(st.Reuses), "session-reuses")
	if total := st.Translation.Hits() + st.Translation.Misses; total > 0 {
		b.ReportMetric(float64(st.Translation.Hits())/float64(total), "xlate-hit-rate")
	}
	b.ReportMetric(float64(st.Encoding.CircuitNodes), "circuit-nodes")
	b.ReportMetric(float64(st.Encoding.SolverVars), "solver-vars")
	b.ReportMetric(float64(st.Encoding.SolverClauses), "solver-clauses")
	b.ReportMetric(float64(st.Encoding.VarsEliminated), "vars-eliminated")
	b.ReportMetric(float64(st.Encoding.ClausesRemoved), "clauses-removed")
	b.ReportMetric(float64(st.Encoding.ArenaBytes), "arena-bytes")
	b.ReportMetric(float64(st.Encoding.ChronoBacktracks), "chrono-backtracks")
	b.ReportMetric(float64(st.Encoding.OTFSubsumed), "otf-subsumed")
	b.ReportMetric(float64(st.Encoding.InprocessRuns), "inprocess-runs")
	b.ReportMetric(float64(st.Encoding.Vivified), "vivified")
}

// BenchmarkAlg2ReconcileWarm is Alg. 2 on the walkthrough served from a
// live SolveCache session: the incremental-reuse counterpart of
// BenchmarkAlg2Reconcile.
func BenchmarkAlg2ReconcileWarm(b *testing.B) {
	w := loadWalkthrough(b)
	k8sParty, istioParty := w.parties(b, w.relaxed, muppet.AllSoft(), muppet.AllSoft())
	cache := muppet.NewSolveCache()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := cache.ReconcileCtx(ctx, w.sys, []*muppet.Party{k8sParty, istioParty}, muppet.Budget{})
		if !res.OK {
			b.Fatal("Fig. 4 goals must reconcile")
		}
	}
	reportReuse(b, cache.Stats())
}

// BenchmarkParallelConsistency serves independent consistency queries from
// GOMAXPROCS goroutines sharing one System: the concurrent query-serving
// throughput of the Sec. 5 deployment scenario. Each goroutine owns its
// parties and its SolveCache (those are single-goroutine by design).
func BenchmarkParallelConsistency(b *testing.B) {
	w := loadWalkthrough(b)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		k8sParty, istioParty := w.parties(b, nil, muppet.Offer{}, muppet.AllHoles())
		cache := muppet.NewSolveCache()
		ctx := context.Background()
		for pb.Next() {
			if res := cache.LocalConsistencyCtx(ctx, w.sys, k8sParty, []*muppet.Party{istioParty}, muppet.Budget{}); !res.OK {
				b.Fatal("provider must be consistent")
			}
		}
	})
}

// --- ablations (DESIGN.md Sec. 6) ---

// fig1Problem builds the reconcilable Fig. 1 problem at the relational
// level so solver/factory options can be varied.
func fig1Problem(b testing.TB) (*encode.System, relational.Formula, *relational.Bounds) {
	b.Helper()
	w := loadWalkthrough(b)
	sys := w.sys
	fk, err := sys.CompileK8sGoals(w.k8sGoals)
	if err != nil {
		b.Fatal(err)
	}
	fi, err := sys.CompileIstioGoals(w.relaxed)
	if err != nil {
		b.Fatal(err)
	}
	bounds := sys.NewBounds()
	sys.BindK8s(bounds, &muppet.K8sConfig{}, muppet.AllHoles())
	sys.BindIstio(bounds, &muppet.IstioConfig{}, muppet.AllHoles())
	return sys, relational.And(fk, fi), bounds
}

func benchSolveWith(b *testing.B, satOpts sat.Options, circOpts boolcirc.Options) {
	_, f, bounds := fig1Problem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ss := relational.NewSessionWith(bounds,
			boolcirc.NewWithOptions(circOpts),
			sat.NewWithOptions(satOpts))
		ss.Assert(f)
		if ss.Solve() != sat.Sat {
			b.Fatal("expected SAT")
		}
	}
}

// BenchmarkAblationDefault is the reference configuration.
func BenchmarkAblationDefault(b *testing.B) {
	benchSolveWith(b, sat.Options{}, boolcirc.Options{})
}

// BenchmarkAblationNoLearning disables CDCL clause learning.
func BenchmarkAblationNoLearning(b *testing.B) {
	benchSolveWith(b, sat.Options{DisableLearning: true}, boolcirc.Options{})
}

// BenchmarkAblationNaivePropagation replaces two-watched-literal
// propagation with occurrence-list scans.
func BenchmarkAblationNaivePropagation(b *testing.B) {
	benchSolveWith(b, sat.Options{NaivePropagation: true}, boolcirc.Options{})
}

// BenchmarkAblationNoRestarts disables Luby restarts.
func BenchmarkAblationNoRestarts(b *testing.B) {
	benchSolveWith(b, sat.Options{DisableRestarts: true}, boolcirc.Options{})
}

// BenchmarkAblationNoHashCons disables structural sharing in the circuit
// factory.
func BenchmarkAblationNoHashCons(b *testing.B) {
	benchSolveWith(b, sat.Options{}, boolcirc.Options{NoHashCons: true})
}

// BenchmarkInprocessTuning sweeps the two inprocessing budget knobs on
// the services=12 cold reconcile, one axis at a time around the defaults
// (vivification budget 100k propagations per round, BVE on every 4th
// tick). The grid backs the tuning table in EXPERIMENTS.md; the default
// cells double as regression anchors for the chosen settings.
func BenchmarkInprocessTuning(b *testing.B) {
	sc := muppet.GenerateScenario(muppet.ScenarioParams{
		Services:        12,
		PortsPerService: 2,
		Flows:           12,
		BannedPorts:     2,
		Seed:            42,
	})
	sys, err := sc.System()
	if err != nil {
		b.Fatal(err)
	}
	k8sParty, _, err := muppet.NewK8sParty(sys, sc.K8sCurrent, muppet.AllSoft(), sc.K8sGoals)
	if err != nil {
		b.Fatal(err)
	}
	istioParty, _, err := muppet.NewIstioParty(sys, sc.IstioCurrent, muppet.AllSoft(), sc.IstioRelaxed)
	if err != nil {
		b.Fatal(err)
	}
	parties := []*muppet.Party{k8sParty, istioParty}
	run := func(name string, vivify, bve int64) {
		b.Run(name, func(b *testing.B) {
			prevV, prevB := muppet.SetInprocessTuning(vivify, bve)
			defer muppet.SetInprocessTuning(prevV, prevB)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if res := muppet.Reconcile(sys, parties); !res.OK {
					b.Fatal("must reconcile")
				}
			}
		})
	}
	run("vivify=off", -1, 0)
	run("vivify=25k", 25_000, 0)
	run("vivify=default", 0, 0)
	run("vivify=400k", 400_000, 0)
	run("bve=2", 0, 2)
	run("bve=default", 0, 0)
	run("bve=8", 0, 8)
}

// --- encoding ablations (DESIGN.md Sec. 11) ---

// benchEncodingWith solves the Fig. 1 reconciliation under one encoding
// configuration and reports the resulting encoding sizes, so the archived
// bench JSON records the clause-count trajectory of each pipeline stage.
// The preprocessing floor is lifted (SimpMinClauses: -1) so the simp
// stage is measurable at walkthrough scale, where production solvers
// would defer it.
func benchEncodingWith(b *testing.B, satOpts sat.Options, cnfOpts boolcirc.CNFOptions) {
	satOpts.SimpMinClauses = -1
	_, f, bounds := fig1Problem(b)
	var ss *relational.Session
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ss = relational.NewSessionWithOptions(bounds,
			boolcirc.New(), sat.NewWithOptions(satOpts), cnfOpts)
		ss.Assert(f)
		if ss.Solve() != sat.Sat {
			b.Fatal("expected SAT")
		}
	}
	s := ss.Solver()
	b.ReportMetric(float64(ss.CNF().Factory().NumNodes()), "circuit-nodes")
	b.ReportMetric(float64(s.NumVars()), "solver-vars")
	b.ReportMetric(float64(s.NumClauses()), "solver-clauses")
	b.ReportMetric(float64(s.Stats.SimpVarsEliminated), "vars-eliminated")
	b.ReportMetric(float64(s.Stats.SimpClausesRemoved), "clauses-removed")
}

// BenchmarkEncodingFull is the production pipeline: polarity-aware
// Tseitin, AIG sweeping, and CNF preprocessing all on.
func BenchmarkEncodingFull(b *testing.B) {
	benchEncodingWith(b, sat.Options{}, boolcirc.CNFOptions{})
}

// BenchmarkEncodingNoPolarity emits the full biconditional for every gate.
func BenchmarkEncodingNoPolarity(b *testing.B) {
	benchEncodingWith(b, sat.Options{}, boolcirc.CNFOptions{NoPolarity: true})
}

// BenchmarkEncodingNoSweep skips functional AIG sweeping before emission.
func BenchmarkEncodingNoSweep(b *testing.B) {
	benchEncodingWith(b, sat.Options{}, boolcirc.CNFOptions{NoSweep: true})
}

// BenchmarkEncodingNoSimp skips CNF preprocessing in the solver.
func BenchmarkEncodingNoSimp(b *testing.B) {
	benchEncodingWith(b, sat.Options{DisableSimp: true}, boolcirc.CNFOptions{})
}

// BenchmarkEncodingLegacy is the seed encoding: full Tseitin, no sweep, no
// preprocessing — the before side of every shrink comparison.
func BenchmarkEncodingLegacy(b *testing.B) {
	benchEncodingWith(b, sat.Options{DisableSimp: true},
		boolcirc.CNFOptions{NoPolarity: true, NoSweep: true})
}

// BenchmarkEncodingTenantFleet measures the multi-tenant serving path: a
// fleet of differently-sized synthetic tenants, each with its own
// warm-cache pool on one shared ledger whose budget holds only about half
// the fleet's warm sessions, so queries round-robining across tenants
// continuously evict and rebuild sessions. ns/op is the per-query latency
// of a budget-constrained fleet; the metrics record how much reuse
// survives the eviction pressure.
func BenchmarkEncodingTenantFleet(b *testing.B) {
	const fleet = 8
	type tenantBundle struct {
		sys   *muppet.System
		k8s   *muppet.Party
		istio *muppet.Party
		pool  *tenantpool.CachePool
	}
	mk := func(i int) (*muppet.System, *muppet.Party, *muppet.Party) {
		sc := muppet.GenerateScenario(muppet.ScenarioParams{
			Services:        3 + i%3,
			PortsPerService: 2,
			Flows:           3,
			BannedPorts:     1,
			Seed:            int64(101 + i),
		})
		sys, err := sc.System()
		if err != nil {
			b.Fatal(err)
		}
		k8sParty, _, err := muppet.NewK8sParty(sys, sc.K8sCurrent, muppet.AllSoft(), nil)
		if err != nil {
			b.Fatal(err)
		}
		istioParty, _, err := muppet.NewIstioParty(sys, sc.IstioCurrent, muppet.AllSoft(), sc.IstioRelaxed)
		if err != nil {
			b.Fatal(err)
		}
		return sys, k8sParty, istioParty
	}
	ctx := context.Background()
	// Size the budget from one warm probe cache: room for roughly half the
	// fleet's sessions, so the ledger must keep evicting.
	sys0, k8s0, istio0 := mk(0)
	probe := muppet.NewSolveCache()
	if res := probe.LocalConsistencyCtx(ctx, sys0, k8s0, []*muppet.Party{istio0}, muppet.Budget{}); !res.OK {
		b.Fatal("fleet scenario must be consistent")
	}
	ledger := tenantpool.NewLedger(probe.ApproxBytes() * fleet / 2)
	bundles := make([]*tenantBundle, fleet)
	for i := range bundles {
		sys, k8sParty, istioParty := mk(i)
		bundles[i] = &tenantBundle{sys: sys, k8s: k8sParty, istio: istioParty,
			pool: ledger.NewPool(fmt.Sprintf("tenant-%02d", i))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bu := bundles[i%fleet]
		c := bu.pool.Checkout()
		res := c.LocalConsistencyCtx(ctx, bu.sys, bu.k8s, []*muppet.Party{bu.istio}, muppet.Budget{})
		bu.pool.Checkin(c)
		if !res.OK {
			b.Fatal("fleet scenario must be consistent")
		}
	}
	b.StopTimer()
	// One deterministic closing sweep pins the final live-session set:
	// without it the gauge metrics below (solver-clauses, cache-idle-bytes)
	// depend on b.N mod fleet — whichever tenants happen to hold live
	// sessions when the timer stops — and the bench-diff gate flaps across
	// runs with different iteration counts. The sweep total exceeds the
	// budget, so every pre-sweep session is evicted and the survivors are
	// always the same suffix of the fleet.
	for _, bu := range bundles {
		c := bu.pool.Checkout()
		res := c.LocalConsistencyCtx(ctx, bu.sys, bu.k8s, []*muppet.Party{bu.istio}, muppet.Budget{})
		bu.pool.Checkin(c)
		if !res.OK {
			b.Fatal("fleet scenario must be consistent")
		}
	}
	var agg muppet.ReuseStats
	for _, bu := range bundles {
		agg.Add(bu.pool.Stats().Reuse)
	}
	reportReuse(b, agg)
	b.ReportMetric(float64(ledger.Evictions()), "cache-evictions")
	b.ReportMetric(float64(ledger.TotalBytes()), "cache-idle-bytes")
}

// BenchmarkDeltaReconcile is the full-vs-delta pair for incremental
// re-reconciliation at the services=12 scenario: a one-tuple goal edit
// (one ban flipped to an allow) arrives as a new revision, and the
// daemon either rebuilds from scratch (cold) or serves it through the
// delta path — snapshot, diff, warm rebase — from the previous
// revision's live sessions (delta). The delta sub-benchmark times the
// whole watch-mode step, diff computation included.
func BenchmarkDeltaReconcile(b *testing.B) {
	sc := muppet.GenerateScenario(muppet.ScenarioParams{
		Services:        12,
		PortsPerService: 2,
		Flows:           12,
		BannedPorts:     2,
		Seed:            42,
	})
	sys, err := sc.System()
	if err != nil {
		b.Fatal(err)
	}
	mk := func(kg []muppet.K8sGoal) []*muppet.Party {
		k8sParty, _, err := muppet.NewK8sParty(sys, sc.K8sCurrent, muppet.AllSoft(), kg)
		if err != nil {
			b.Fatal(err)
		}
		istioParty, _, err := muppet.NewIstioParty(sys, sc.IstioCurrent, muppet.AllSoft(), sc.IstioRelaxed)
		if err != nil {
			b.Fatal(err)
		}
		return []*muppet.Party{k8sParty, istioParty}
	}
	// Revision B flips the first ban to an allow: same ports, same
	// universe — the canonical compatible one-tuple edit.
	goalsB := append([]muppet.K8sGoal(nil), sc.K8sGoals...)
	goalsB[0].Allow = !goalsB[0].Allow
	partiesA, partiesB := mk(sc.K8sGoals), mk(goalsB)

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ps := partiesA
			if i%2 == 1 {
				ps = partiesB
			}
			if res := muppet.Reconcile(sys, ps); !res.OK {
				b.Fatal("scenario must reconcile")
			}
		}
	})
	b.Run("delta", func(b *testing.B) {
		cache := muppet.NewSolveCache()
		ctx := context.Background()
		prev := muppet.Snapshot(sys, partiesA)
		if res := cache.ReconcileCtx(ctx, sys, partiesA, muppet.Budget{}); !res.OK {
			b.Fatal("scenario must reconcile")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ps := partiesB
			if i%2 == 1 {
				ps = partiesA
			}
			next := muppet.Snapshot(sys, ps)
			plan := muppet.CompareRevisions(prev, next)
			if !plan.Compatible {
				b.Fatalf("revisions must be compatible: %s", plan.Reason)
			}
			var res *muppet.Result
			ds := cache.Rebase(plan, func() {
				res = cache.ReconcileCtx(ctx, sys, ps, muppet.Budget{})
			})
			if !res.OK {
				b.Fatal("scenario must reconcile")
			}
			if ds.Cold {
				b.Fatalf("delta serving went cold: %s", ds.Reason)
			}
			prev = next
		}
		b.StopTimer()
		st := cache.Stats()
		reportReuse(b, st)
		b.ReportMetric(float64(st.Encoding.Restored), "restored")
	})
}

// BenchmarkAblationEnvelopeNoSimplify computes the Fig. 5 envelope without
// the elementary-simplification pass, reporting size and leakage through
// custom metrics.
func BenchmarkAblationEnvelopeNoSimplify(b *testing.B) {
	w := loadWalkthrough(b)
	sys := w.sys
	fk, err := sys.CompileK8sGoals(w.k8sGoals)
	if err != nil {
		b.Fatal(err)
	}
	sender := sys.SenderTupleSets(w.bundle.K8s, nil, nil)
	for _, mode := range []struct {
		name string
		opts envelope.Options
	}{
		{"simplify", envelope.Options{Shared: sys.SharedTupleSets()}},
		{"raw", envelope.Options{NoSimplify: true, Shared: sys.SharedTupleSets()}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var env *envelope.Envelope
			for i := 0; i < b.N; i++ {
				env = envelope.Compute("K8s", "Istio",
					[]relational.Formula{fk}, sender, sys.IstioRelations(), sys.Universe, mode.opts)
			}
			b.ReportMetric(float64(env.Size()), "nodes")
			b.ReportMetric(float64(len(env.LeakedAtoms())), "leaked-atoms")
		})
	}
}
