package muppet_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"muppet"
	"muppet/internal/feder"
	"muppet/internal/server"
	tenantpool "muppet/internal/tenant"
)

// The encoding cross-check suite asserts the core promise of the encoding
// pipeline (polarity-aware Tseitin, AIG sweeping, CNF preprocessing):
// every configuration — including the legacy seed encoding with all three
// off — produces byte-identical verdicts, canonical models, edits, blame
// cores, and negotiation transcripts. The optimisations may only change
// encoding size and speed, never observable output.

// encodingConfigs spans the ablation lattice from the full pipeline to
// the seed encoding.
var encodingConfigs = []struct {
	name string
	enc  muppet.Encoding
}{
	{"full", muppet.Encoding{}},
	{"no-simp", muppet.Encoding{NoPreprocess: true}},
	{"no-polarity", muppet.Encoding{NoPolarity: true}},
	{"no-sweep", muppet.Encoding{NoSweep: true}},
	{"legacy", muppet.Encoding{NoPolarity: true, NoSweep: true, NoPreprocess: true}},
}

// withEncoding runs f under e, restoring the previous configuration.
func withEncoding(e muppet.Encoding, f func()) {
	prev := muppet.SetEncoding(e)
	defer muppet.SetEncoding(prev)
	f()
}

// TestEncodingCrossCheckExec drives every mediation op the daemon serves
// over the Fig. 1 inputs — in both the reconcilable (relaxed) and the
// conflicting (strict, blame-core-producing) variants — and requires the
// rendered output and exit code to be byte-identical across encodings.
func TestEncodingCrossCheckExec(t *testing.T) {
	states := []struct {
		name string
		cfg  server.Config
	}{
		{"relaxed", server.Config{
			Files:      "testdata/fig1/mesh.yaml,testdata/fig1/k8s_current.yaml,testdata/fig1/istio_current.yaml",
			K8sGoals:   "testdata/fig1/k8s_goals.csv",
			IstioGoals: "testdata/fig1/istio_goals_revised.csv",
			K8sOffer:   "soft",
			IstioOffer: "soft",
		}},
		{"strict", server.Config{
			Files:      "testdata/fig1/mesh.yaml,testdata/fig1/k8s_current.yaml,testdata/fig1/istio_current.yaml",
			K8sGoals:   "testdata/fig1/k8s_goals.csv",
			IstioGoals: "testdata/fig1/istio_goals.csv",
			K8sOffer:   "fixed",
			IstioOffer: "soft",
		}},
	}
	reqs := []server.Request{
		{Op: "check", Party: "k8s"},
		{Op: "check", Party: "istio"},
		{Op: "envelope", From: "k8s", To: "istio", Leakage: true},
		{Op: "reconcile"},
		{Op: "conform", Provider: "k8s"},
		{Op: "negotiate"},
	}
	for _, stc := range states {
		st, err := server.Load(stc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, req := range reqs {
			req := req
			t.Run(stc.name+"/"+req.Op+"/"+req.Party, func(t *testing.T) {
				type outcome struct {
					code   int
					output string
				}
				var base outcome
				for i, cfg := range encodingConfigs {
					var got outcome
					withEncoding(cfg.enc, func() {
						resp, err := server.Exec(context.Background(), st, muppet.NewSolveCache(), req, muppet.Budget{})
						if err != nil {
							t.Fatalf("%s: %v", cfg.name, err)
						}
						got = outcome{resp.Code, resp.Output}
					})
					if i == 0 {
						base = got
						continue
					}
					if got.code != base.code {
						t.Fatalf("%s: code %d, full pipeline %d", cfg.name, got.code, base.code)
					}
					if got.output != base.output {
						t.Fatalf("%s output differs from full pipeline:\n--- full ---\n%s\n--- %s ---\n%s",
							cfg.name, base.output, cfg.name, got.output)
					}
				}
			})
		}
	}
}

// renderResult flattens everything observable about a workflow result.
func renderResult(res *muppet.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ok=%v indeterminate=%v stop=%v\n", res.OK, res.Indeterminate, res.Stop)
	for _, e := range res.Edits {
		fmt.Fprintf(&b, "edit: %s\n", e.String())
	}
	if res.Feedback != nil {
		fmt.Fprintln(&b, res.Feedback.String())
	}
	return b.String()
}

// TestEncodingCrossCheckScenarios sweeps generated scenarios (the Fig. 8
// corpus shape) through consistency, reconciliation — against both the
// relaxed and the conflicting strict goals — and full negotiations,
// comparing adopted configurations, edits, and blame across encodings.
func TestEncodingCrossCheckScenarios(t *testing.T) {
	for _, services := range []int{3, 6, 12} {
		sc := muppet.GenerateScenario(muppet.ScenarioParams{
			Services:        services,
			PortsPerService: 2,
			Flows:           services,
			BannedPorts:     1 + services/8,
			Seed:            42,
		})
		sys, err := sc.System()
		if err != nil {
			t.Fatal(err)
		}
		run := func(strict bool) string {
			ig := sc.IstioRelaxed
			if strict {
				ig = sc.IstioStrict
			}
			k8sParty, _, err := muppet.NewK8sParty(sys, sc.K8sCurrent, muppet.AllSoft(), sc.K8sGoals)
			if err != nil {
				t.Fatal(err)
			}
			istioParty, _, err := muppet.NewIstioParty(sys, sc.IstioCurrent, muppet.AllSoft(), ig)
			if err != nil {
				t.Fatal(err)
			}
			var b strings.Builder
			lc := muppet.LocalConsistency(sys, k8sParty, []*muppet.Party{istioParty})
			fmt.Fprintf(&b, "consistency:\n%s", renderResult(lc))
			rec := muppet.Reconcile(sys, []*muppet.Party{k8sParty, istioParty})
			fmt.Fprintf(&b, "reconcile:\n%s", renderResult(rec))
			if rec.OK {
				k8sParty.Adopt(rec.Instance)
				istioParty.Adopt(rec.Instance)
				b.WriteString(k8sParty.Describe())
				b.WriteString(istioParty.Describe())
			}
			out := muppet.NewNegotiation(sys, k8sParty, istioParty).Run()
			fmt.Fprintf(&b, "negotiation: reconciled=%v reason=%v rounds=%d\n",
				out.Reconciled, out.Reason, len(out.Rounds))
			return b.String()
		}
		for _, strict := range []bool{false, true} {
			name := fmt.Sprintf("services=%d/strict=%v", services, strict)
			t.Run(name, func(t *testing.T) {
				var base string
				for i, cfg := range encodingConfigs {
					var got string
					withEncoding(cfg.enc, func() { got = run(strict) })
					if i == 0 {
						base = got
					} else if got != base {
						t.Fatalf("%s differs from full pipeline:\n--- full ---\n%s\n--- %s ---\n%s",
							cfg.name, base, cfg.name, got)
					}
				}
			})
		}
	}
}

// TestMultiTenantServingMatchesColdExec extends the cross-check promise
// to the multi-tenant daemon: every op served from a tenant's warm cache
// pool over HTTP must be byte-identical to a cold one-shot execution of
// the same bundle (the CLI path, nil cache). Two rounds per tenant make
// the second round answer from reused sessions, so warm-vs-cold parity —
// not just determinism — is what's being checked.
func TestMultiTenantServingMatchesColdExec(t *testing.T) {
	dir := t.TempDir()
	mkCfg := func(id, goalsCSV string) server.Config {
		p := filepath.Join(dir, id+"_k8s_goals.csv")
		if err := os.WriteFile(p, []byte(goalsCSV), 0o644); err != nil {
			t.Fatal(err)
		}
		return server.Config{
			Files:      "testdata/fig1/mesh.yaml,testdata/fig1/k8s_current.yaml,testdata/fig1/istio_current.yaml",
			K8sGoals:   p,
			IstioGoals: "testdata/fig1/istio_goals_revised.csv",
			K8sOffer:   "soft",
			IstioOffer: "soft",
		}
	}
	cfgs := map[string]server.Config{
		"alpha": mkCfg("alpha", "port,perm,selector\n23,DENY,*\n"),
		"bravo": mkCfg("bravo", "port,perm,selector\n24,DENY,*\n"),
	}

	reg := tenantpool.NewRegistry[*server.State](tenantpool.NewLedger(0))
	for id, cfg := range cfgs {
		if _, err := reg.Add(id, server.LoaderFromConfig(cfg)); err != nil {
			t.Fatal(err)
		}
	}
	s := server.NewMulti(reg, server.Options{Concurrency: 2, QueueDepth: 16})
	defer s.Close()
	hs := httptest.NewServer(s)
	defer hs.Close()

	reqs := []server.Request{
		{Op: "check", Party: "k8s"},
		{Op: "envelope", From: "k8s", To: "istio", Leakage: true},
		{Op: "reconcile"},
		{Op: "negotiate"},
	}
	for id, cfg := range cfgs {
		st, err := server.Load(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, req := range reqs {
			cold, err := server.Exec(context.Background(), st, nil, req, muppet.Budget{})
			if err != nil {
				t.Fatalf("%s/%s cold: %v", id, req.Op, err)
			}
			for round := 0; round < 2; round++ {
				body, _ := json.Marshal(req)
				res, err := http.Post(hs.URL+"/t/"+id+"/"+req.Op, "application/json", bytes.NewReader(body))
				if err != nil {
					t.Fatalf("%s/%s round %d: %v", id, req.Op, round, err)
				}
				var warm server.Response
				derr := json.NewDecoder(res.Body).Decode(&warm)
				res.Body.Close()
				if derr != nil || res.StatusCode != http.StatusOK {
					t.Fatalf("%s/%s round %d: HTTP %d, decode %v", id, req.Op, round, res.StatusCode, derr)
				}
				if warm.Code != cold.Code || warm.Output != cold.Output {
					t.Fatalf("%s/%s round %d: served answer differs from cold exec\n--- cold (code %d) ---\n%s\n--- served (code %d) ---\n%s",
						id, req.Op, round, cold.Code, cold.Output, warm.Code, warm.Output)
				}
			}
		}
	}
}

// TestEncodingShrinks pins the headline claim: on a mid-size scenario the
// full pipeline's post-preprocessing clause count is at least 30% below
// the legacy (seed) encoding's.
func TestEncodingShrinks(t *testing.T) {
	sc := muppet.GenerateScenario(muppet.ScenarioParams{
		Services: 12, PortsPerService: 2, Flows: 12, BannedPorts: 2, Seed: 42,
	})
	sys, err := sc.System()
	if err != nil {
		t.Fatal(err)
	}
	measure := func(enc muppet.Encoding) muppet.EncodingStats {
		var st muppet.EncodingStats
		withEncoding(enc, func() {
			k8sParty, _, err := muppet.NewK8sParty(sys, sc.K8sCurrent, muppet.AllSoft(), sc.K8sGoals)
			if err != nil {
				t.Fatal(err)
			}
			istioParty, _, err := muppet.NewIstioParty(sys, sc.IstioCurrent, muppet.AllSoft(), sc.IstioRelaxed)
			if err != nil {
				t.Fatal(err)
			}
			cache := muppet.NewSolveCache()
			if res := cache.ReconcileCtx(context.Background(), sys, []*muppet.Party{k8sParty, istioParty}, muppet.Budget{}); !res.OK {
				t.Fatal("must reconcile")
			}
			st = cache.Stats().Encoding
		})
		return st
	}
	full := measure(muppet.Encoding{})
	legacy := measure(muppet.Encoding{NoPolarity: true, NoSweep: true, NoPreprocess: true})
	t.Logf("full: %+v", full)
	t.Logf("legacy: %+v", legacy)
	if full.SolverClauses >= legacy.SolverClauses {
		t.Fatalf("full pipeline has %d clauses, legacy %d", full.SolverClauses, legacy.SolverClauses)
	}
	reduction := 1 - float64(full.SolverClauses)/float64(legacy.SolverClauses)
	if reduction < 0.30 {
		t.Fatalf("clause reduction %.1f%% below the 30%% target (full %d, legacy %d)",
			100*reduction, full.SolverClauses, legacy.SolverClauses)
	}
}

// TestFederatedServingMatchesSingleProcess is the end-to-end daemon-level
// parity check: a coordinator state driving `negotiate` against two
// loopback muppetd peers (each loaded with ONLY its own goals, as real
// trust domains would be) must render byte-identical output to the
// single-process negotiate arm — across every encoding configuration —
// and leave a verifiable transcript. The peer configs carry explicit
// -ports unions so all three universes fingerprint identically.
func TestFederatedServingMatchesSingleProcess(t *testing.T) {
	files := "testdata/fig1/mesh.yaml,testdata/fig1/k8s_current.yaml,testdata/fig1/istio_current.yaml"
	variants := []struct {
		name                      string
		coord, k8sPeer, istioPeer server.Config
	}{
		{
			name: "relaxed",
			coord: server.Config{
				Files:    files,
				K8sGoals: "testdata/fig1/k8s_goals.csv", K8sOffer: "soft",
				IstioGoals: "testdata/fig1/istio_goals_revised.csv", IstioOffer: "soft",
			},
			// The K8s daemon never sees Istio's goals; it learns the Istio
			// goal ports only as universe atoms (and vice versa).
			k8sPeer: server.Config{
				Files:    files,
				K8sGoals: "testdata/fig1/k8s_goals.csv", K8sOffer: "soft",
				Ports: "10000,12000,14000,16000",
			},
			istioPeer: server.Config{
				Files:      files,
				IstioGoals: "testdata/fig1/istio_goals_revised.csv", IstioOffer: "soft",
				Ports: "23",
			},
		},
		{
			name: "strict",
			coord: server.Config{
				Files:    files,
				K8sGoals: "testdata/fig1/k8s_goals.csv", K8sOffer: "fixed",
				IstioGoals: "testdata/fig1/istio_goals.csv", IstioOffer: "soft",
			},
			k8sPeer: server.Config{
				Files:    files,
				K8sGoals: "testdata/fig1/k8s_goals.csv", K8sOffer: "fixed",
				Ports: "24,25,26,10000,12000,14000,16000",
			},
			istioPeer: server.Config{
				Files:      files,
				IstioGoals: "testdata/fig1/istio_goals.csv", IstioOffer: "soft",
				Ports: "23",
			},
		},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			load := func(cfg server.Config) *server.State {
				st, err := server.Load(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return st
			}
			stCo, stK8s, stIstio := load(v.coord), load(v.k8sPeer), load(v.istioPeer)
			for name, st := range map[string]*server.State{"k8s": stK8s, "istio": stIstio} {
				if got, want := feder.SystemFingerprint(st.Sys), feder.SystemFingerprint(stCo.Sys); got != want {
					t.Fatalf("%s peer universe drifted from the coordinator's: %s vs %s", name, got, want)
				}
			}

			k8sD := server.New(stK8s, server.Options{Concurrency: 1, FedParty: "k8s"})
			defer k8sD.Close()
			k8sSrv := httptest.NewServer(k8sD)
			defer k8sSrv.Close()
			istioD := server.New(stIstio, server.Options{Concurrency: 1, FedParty: "istio"})
			defer istioD.Close()
			istioSrv := httptest.NewServer(istioD)
			defer istioSrv.Close()

			peers := "k8s=" + k8sSrv.URL + ",istio=" + istioSrv.URL
			key := []byte("crosscheck-transcript-key")
			for _, cfg := range encodingConfigs {
				cfg := cfg
				t.Run(cfg.name, func(t *testing.T) {
					withEncoding(cfg.enc, func() {
						ctx := context.Background()
						base, err := server.Exec(ctx, stCo, muppet.NewSolveCache(),
							server.Request{Op: "negotiate"}, muppet.Budget{})
						if err != nil {
							t.Fatal(err)
						}
						var transcript bytes.Buffer
						fed, err := server.ExecFed(ctx, stCo, muppet.NewSolveCache(),
							server.Request{Op: "negotiate", Peers: peers}, muppet.Budget{},
							&server.FedOptions{Seed: 11, Transcript: feder.NewTranscriptWriter(&transcript, key)})
						if err != nil {
							t.Fatal(err)
						}
						if fed.Code != base.Code {
							t.Fatalf("federated code %d, single-process %d\n--- federated ---\n%s", fed.Code, base.Code, fed.Output)
						}
						if fed.Output != base.Output {
							t.Fatalf("federated output differs from single-process:\n--- single-process ---\n%s\n--- federated ---\n%s",
								base.Output, fed.Output)
						}
						n, err := feder.VerifyTranscript(bytes.NewReader(transcript.Bytes()), key)
						if err != nil {
							t.Fatalf("transcript: %v", err)
						}
						if n == 0 {
							t.Fatal("federated run left an empty transcript")
						}
					})
				})
			}
		})
	}
}

// TestThreePartyFederatedMatchesSingleProcess extends the parity claim
// past the paper's two-party walkthrough: a third party (security
// operations, owning its own NetworkPolicy shell over the db service)
// joins the negotiation, and the coordinator over three loopback peers
// must replay the three-party single-process loop exactly.
func TestThreePartyFederatedMatchesSingleProcess(t *testing.T) {
	bundle, err := muppet.LoadFiles(
		"testdata/fig1/mesh.yaml", "testdata/fig1/k8s_current.yaml", "testdata/fig1/istio_current.yaml")
	if err != nil {
		t.Fatal(err)
	}
	kg, err := muppet.LoadK8sGoals("testdata/fig1/k8s_goals.csv")
	if err != nil {
		t.Fatal(err)
	}
	ig, err := muppet.LoadIstioGoals("testdata/fig1/istio_goals_revised.csv")
	if err != nil {
		t.Fatal(err)
	}
	secopsShell := &muppet.NetworkPolicy{Name: "secops", Selector: map[string]string{"app": "db"}}
	secopsGoals := []muppet.K8sGoal{{Port: 16000, Allow: false, Selector: map[string]string{"app": "backend"}}}
	secopsCfg := &muppet.K8sConfig{Policies: []*muppet.NetworkPolicy{secopsShell}}
	shells := append(append([]*muppet.NetworkPolicy{}, bundle.K8s.Policies...), secopsShell)
	sys, err := muppet.NewSystem(bundle.Mesh, shells, bundle.Istio.Policies,
		[]int{23, 10000, 12000, 14000, 16000})
	if err != nil {
		t.Fatal(err)
	}

	// mkParty builds a fresh party by slot; the constructors clone
	// configurations, so baseline, replicas, and peers never share
	// mutable state. (No t.Fatal here — peers call it from HTTP handler
	// goroutines.)
	mkParty := func(i int) (*feder.LocalParty, error) {
		switch i {
		case 0:
			return feder.NewLocalK8s(sys, bundle.K8s, muppet.AllSoft(), kg, "")
		case 1:
			return feder.NewLocalK8s(sys, secopsCfg, muppet.AllSoft(), secopsGoals, "SecOps")
		default:
			return feder.NewLocalIstio(sys, bundle.Istio, muppet.AllSoft(), ig, "")
		}
	}
	parties := func() []*feder.LocalParty {
		out := make([]*feder.LocalParty, 3)
		for i := range out {
			lp, err := mkParty(i)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = lp
		}
		return out
	}

	baseParties := parties()
	base := muppet.NewNegotiation(sys, baseParties[0].P, baseParties[1].P, baseParties[2].P).Run()

	var peerRefs []feder.PeerRef
	for i, lp := range parties() {
		i := i
		srv := httptest.NewServer(feder.NewPeer(sys, func() (*feder.LocalParty, error) {
			return mkParty(i)
		}, feder.PeerHooks{}).Handler())
		defer srv.Close()
		peerRefs = append(peerRefs, feder.PeerRef{Name: lp.P.Name, URL: srv.URL})
	}
	replicas := parties()
	co, err := feder.NewCoordinator(sys, replicas, peerRefs, feder.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	fed := co.Run(context.Background(), muppet.Budget{})

	if fed.Reconciled != base.Reconciled || fed.InitialReconcile != base.InitialReconcile ||
		fed.Reason.String() != base.Reason.String() || len(fed.Rounds) != len(base.Rounds) {
		t.Fatalf("three-party outcome diverged: federated rec=%v initial=%v reason=%s rounds=%d; single-process rec=%v initial=%v reason=%s rounds=%d",
			fed.Reconciled, fed.InitialReconcile, fed.Reason, len(fed.Rounds),
			base.Reconciled, base.InitialReconcile, base.Reason, len(base.Rounds))
	}
	for i, fr := range fed.Rounds {
		br := base.Rounds[i]
		if fr.Party != br.Party || fr.ConformedAlready != br.ConformedAlready || fr.Revised != br.Revised ||
			fr.Stuck != br.Stuck || fr.Reconciled != br.Reconciled || len(fr.Edits) != len(br.Edits) {
			t.Fatalf("three-party round %d diverged: federated %+v, single-process %+v", i+1, fr, br)
		}
	}
	for i, names := range []string{"K8s", "SecOps", "Istio"} {
		if got, want := replicas[i].P.Describe(), baseParties[i].P.Describe(); got != want {
			t.Fatalf("%s replica configuration diverged:\n--- federated ---\n%s\n--- single-process ---\n%s", names, got, want)
		}
	}
	t.Logf("three-party outcome: reconciled=%v initial=%v rounds=%d", fed.Reconciled, fed.InitialReconcile, len(fed.Rounds))
}
