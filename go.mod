module muppet

go 1.22
