package muppet_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"muppet"
)

// fig1System builds the Fig. 1 system plus loaded goal sets, shared by the
// warm-stability tests below.
func fig1System(t *testing.T) (*muppet.System, *muppet.Bundle, []muppet.K8sGoal, []muppet.IstioGoal) {
	t.Helper()
	bundle, err := muppet.LoadFiles(
		"testdata/fig1/mesh.yaml",
		"testdata/fig1/k8s_current.yaml",
		"testdata/fig1/istio_current.yaml",
	)
	if err != nil {
		t.Fatal(err)
	}
	kg, err := muppet.LoadK8sGoals("testdata/fig1/k8s_goals.csv")
	if err != nil {
		t.Fatal(err)
	}
	ig, err := muppet.LoadIstioGoals("testdata/fig1/istio_goals_revised.csv")
	if err != nil {
		t.Fatal(err)
	}
	var extra []int
	for _, g := range kg {
		extra = append(extra, g.Port)
	}
	for _, g := range ig {
		for _, tm := range []muppet.PortTerm{g.SrcPort, g.DstPort} {
			if tm.Kind == muppet.PortLit {
				extra = append(extra, tm.Port)
			}
		}
	}
	sys, err := muppet.NewSystem(bundle.Mesh, bundle.K8s.Policies, bundle.Istio.Policies, extra)
	if err != nil {
		t.Fatal(err)
	}
	return sys, bundle, kg, ig
}

// TestWarmReconcileByteStable asserts the guarantee the mediation daemon
// depends on: a reconcile served from a warm SolveCache session (with
// learnt clauses and heuristic state accumulated over prior queries)
// renders byte-identically to a cold run — not just the same verdict and
// edit distance, but the same canonical model, edits, and configurations.
func TestWarmReconcileByteStable(t *testing.T) {
	sys, bundle, kg, ig := fig1System(t)
	run := func(cache *muppet.SolveCache) string {
		k8sParty, _, err := muppet.NewK8sParty(sys, bundle.K8s, muppet.AllSoft(), kg)
		if err != nil {
			t.Fatal(err)
		}
		istioParty, _, err := muppet.NewIstioParty(sys, bundle.Istio, muppet.AllSoft(), ig)
		if err != nil {
			t.Fatal(err)
		}
		res := cache.ReconcileCtx(context.Background(), sys, []*muppet.Party{k8sParty, istioParty}, muppet.Budget{})
		if !res.OK {
			t.Fatalf("reconcile failed: indeterminate=%v feedback=%v", res.Indeterminate, res.Feedback)
		}
		k8sParty.Adopt(res.Instance)
		istioParty.Adopt(res.Instance)
		out := ""
		for _, e := range res.Edits {
			out += "edit: " + e.String() + "\n"
		}
		return out + k8sParty.Describe() + istioParty.Describe()
	}
	cold := run(muppet.NewSolveCache())
	cache := muppet.NewSolveCache()
	for i := 0; i < 5; i++ {
		if warm := run(cache); warm != cold {
			t.Fatalf("warm iteration %d differs from cold:\n--- cold ---\n%s\n--- warm ---\n%s", i, cold, warm)
		}
	}
	if st := cache.Stats(); st.Reuses == 0 {
		t.Fatalf("expected warm session reuse, stats %+v", st)
	}
}

// TestWarmNegotiationByteStable extends the byte-stability guarantee to
// the multi-round negotiation workflow, whose rounds all share one cache.
func TestWarmNegotiationByteStable(t *testing.T) {
	sys, bundle, kg, ig := fig1System(t)
	run := func(cache *muppet.SolveCache) string {
		k8sParty, _, err := muppet.NewK8sParty(sys, bundle.K8s, muppet.AllSoft(), kg)
		if err != nil {
			t.Fatal(err)
		}
		istioParty, _, err := muppet.NewIstioParty(sys, bundle.Istio, muppet.AllSoft(), ig)
		if err != nil {
			t.Fatal(err)
		}
		n := muppet.NewNegotiation(sys, k8sParty, istioParty).UseCache(cache)
		out := n.RunCtx(context.Background(), muppet.Budget{})
		return fmt.Sprintf("reconciled=%v reason=%v rounds=%d\n%s%s",
			out.Reconciled, out.Reason, len(out.Rounds), k8sParty.Describe(), istioParty.Describe())
	}
	cold := run(muppet.NewSolveCache())
	cache := muppet.NewSolveCache()
	for i := 0; i < 5; i++ {
		if warm := run(cache); warm != cold {
			t.Fatalf("warm iteration %d differs from cold:\n--- cold ---\n%s\n--- warm ---\n%s", i, cold, warm)
		}
	}
}

// allocsDuring reports heap allocations (object count) made by fn,
// measured with the world otherwise quiet. GC is forced first so a
// collection triggered mid-run can't misattribute background work.
func allocsDuring(fn func()) uint64 {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// TestWarmReconcileAllocGate is the regression gate for the warm-path
// collapse fixed alongside the arena front-end: a SolveCache serving a
// repeat reconcile from a live session must do a small fraction of the
// cold build's allocation work. Before the fix, the "warm" benchmarks at
// the larger sweep sizes ran with b.N=1 and silently timed the cold
// build; the gate pins warm allocations to under 25% of cold so any
// regression of the session-reuse path fails loudly instead of showing
// up only as benchmark drift.
func TestWarmReconcileAllocGate(t *testing.T) {
	if testing.Short() {
		t.Skip("cold build at services=24 is slow; skipped under -short")
	}
	sc := muppet.GenerateScenario(muppet.ScenarioParams{
		Services:        24,
		PortsPerService: 2,
		Flows:           24,
		BannedPorts:     2,
		Seed:            42,
	})
	sys, err := sc.System()
	if err != nil {
		t.Fatal(err)
	}
	k8sParty, _, err := muppet.NewK8sParty(sys, sc.K8sCurrent, muppet.AllSoft(), sc.K8sGoals)
	if err != nil {
		t.Fatal(err)
	}
	istioParty, _, err := muppet.NewIstioParty(sys, sc.IstioCurrent, muppet.AllSoft(), sc.IstioRelaxed)
	if err != nil {
		t.Fatal(err)
	}
	parties := []*muppet.Party{k8sParty, istioParty}
	ctx := context.Background()

	cache := muppet.NewSolveCache()
	cold := allocsDuring(func() {
		if res := cache.ReconcileCtx(ctx, sys, parties, muppet.Budget{}); !res.OK {
			t.Fatal("must reconcile")
		}
	})
	warm := allocsDuring(func() {
		if res := cache.ReconcileCtx(ctx, sys, parties, muppet.Budget{}); !res.OK {
			t.Fatal("must reconcile")
		}
	})
	if cache.Stats().Reuses == 0 {
		t.Fatal("second reconcile did not reuse the live session")
	}
	t.Logf("cold=%d warm=%d allocs (warm/cold = %.1f%%)", cold, warm, 100*float64(warm)/float64(cold))
	if warm*4 >= cold {
		t.Fatalf("warm reconcile allocated %d objects, >= 25%% of the cold build's %d: session reuse has regressed", warm, cold)
	}
}
