package muppet_test

import (
	"context"
	"fmt"
	"testing"

	"muppet"
)

// fig1System builds the Fig. 1 system plus loaded goal sets, shared by the
// warm-stability tests below.
func fig1System(t *testing.T) (*muppet.System, *muppet.Bundle, []muppet.K8sGoal, []muppet.IstioGoal) {
	t.Helper()
	bundle, err := muppet.LoadFiles(
		"testdata/fig1/mesh.yaml",
		"testdata/fig1/k8s_current.yaml",
		"testdata/fig1/istio_current.yaml",
	)
	if err != nil {
		t.Fatal(err)
	}
	kg, err := muppet.LoadK8sGoals("testdata/fig1/k8s_goals.csv")
	if err != nil {
		t.Fatal(err)
	}
	ig, err := muppet.LoadIstioGoals("testdata/fig1/istio_goals_revised.csv")
	if err != nil {
		t.Fatal(err)
	}
	var extra []int
	for _, g := range kg {
		extra = append(extra, g.Port)
	}
	for _, g := range ig {
		for _, tm := range []muppet.PortTerm{g.SrcPort, g.DstPort} {
			if tm.Kind == muppet.PortLit {
				extra = append(extra, tm.Port)
			}
		}
	}
	sys, err := muppet.NewSystem(bundle.Mesh, bundle.K8s.Policies, bundle.Istio.Policies, extra)
	if err != nil {
		t.Fatal(err)
	}
	return sys, bundle, kg, ig
}

// TestWarmReconcileByteStable asserts the guarantee the mediation daemon
// depends on: a reconcile served from a warm SolveCache session (with
// learnt clauses and heuristic state accumulated over prior queries)
// renders byte-identically to a cold run — not just the same verdict and
// edit distance, but the same canonical model, edits, and configurations.
func TestWarmReconcileByteStable(t *testing.T) {
	sys, bundle, kg, ig := fig1System(t)
	run := func(cache *muppet.SolveCache) string {
		k8sParty, _, err := muppet.NewK8sParty(sys, bundle.K8s, muppet.AllSoft(), kg)
		if err != nil {
			t.Fatal(err)
		}
		istioParty, _, err := muppet.NewIstioParty(sys, bundle.Istio, muppet.AllSoft(), ig)
		if err != nil {
			t.Fatal(err)
		}
		res := cache.ReconcileCtx(context.Background(), sys, []*muppet.Party{k8sParty, istioParty}, muppet.Budget{})
		if !res.OK {
			t.Fatalf("reconcile failed: indeterminate=%v feedback=%v", res.Indeterminate, res.Feedback)
		}
		k8sParty.Adopt(res.Instance)
		istioParty.Adopt(res.Instance)
		out := ""
		for _, e := range res.Edits {
			out += "edit: " + e.String() + "\n"
		}
		return out + k8sParty.Describe() + istioParty.Describe()
	}
	cold := run(muppet.NewSolveCache())
	cache := muppet.NewSolveCache()
	for i := 0; i < 5; i++ {
		if warm := run(cache); warm != cold {
			t.Fatalf("warm iteration %d differs from cold:\n--- cold ---\n%s\n--- warm ---\n%s", i, cold, warm)
		}
	}
	if st := cache.Stats(); st.Reuses == 0 {
		t.Fatalf("expected warm session reuse, stats %+v", st)
	}
}

// TestWarmNegotiationByteStable extends the byte-stability guarantee to
// the multi-round negotiation workflow, whose rounds all share one cache.
func TestWarmNegotiationByteStable(t *testing.T) {
	sys, bundle, kg, ig := fig1System(t)
	run := func(cache *muppet.SolveCache) string {
		k8sParty, _, err := muppet.NewK8sParty(sys, bundle.K8s, muppet.AllSoft(), kg)
		if err != nil {
			t.Fatal(err)
		}
		istioParty, _, err := muppet.NewIstioParty(sys, bundle.Istio, muppet.AllSoft(), ig)
		if err != nil {
			t.Fatal(err)
		}
		n := muppet.NewNegotiation(sys, k8sParty, istioParty).UseCache(cache)
		out := n.RunCtx(context.Background(), muppet.Budget{})
		return fmt.Sprintf("reconciled=%v reason=%v rounds=%d\n%s%s",
			out.Reconciled, out.Reason, len(out.Rounds), k8sParty.Describe(), istioParty.Describe())
	}
	cold := run(muppet.NewSolveCache())
	cache := muppet.NewSolveCache()
	for i := 0; i < 5; i++ {
		if warm := run(cache); warm != cold {
			t.Fatalf("warm iteration %d differs from cold:\n--- cold ---\n%s\n--- warm ---\n%s", i, cold, warm)
		}
	}
}
